//! Record/replay tooling: event-log diffing and fault-schedule
//! shrinking.
//!
//! The [`crate::trace`] log is the source of truth for what a protocol
//! run *did*: every hole, notification, movement and convergence is a
//! [`TraceRecord`]. That turns two debugging chores into mechanical
//! ones:
//!
//! * **diff** — two runs that should agree (the same scheme across two
//!   commits, two drive modes of one scheme, or two schemes on the
//!   identical deployment stream) are compared event by event;
//!   [`diff_logs`] reports the first divergent record with the shared
//!   records leading up to it, instead of a bare "metrics differ".
//! * **shrink** — when a fault schedule provokes a divergence,
//!   [`shrink_fault_plan`] runs textbook delta debugging (Zeller's
//!   *ddmin*) over the schedule: drop batches, re-run the caller's
//!   oracle, keep whatever still fails, until the schedule is 1-minimal
//!   at batch granularity; a second pass then minimizes the victim list
//!   inside every surviving [`FaultEvent::KillNodes`] batch.
//!
//! Both halves are pure functions: given a deterministic oracle the
//! shrink is deterministic, so minimal repros reproduce across reruns
//! and worker counts. The experiment-harness layer (`wsn-bench`) builds
//! the re-execution machinery (campaign-coordinate recording, artifact
//! files, the `replay` CLI) on top of these primitives.

use crate::fault::{FaultEvent, FaultPlan, ScheduledFault};
use crate::trace::{TraceLog, TraceRecord};
use std::fmt;

/// Shared records kept before a divergence for human context.
pub const DIFF_CONTEXT: usize = 3;

/// The first point where two logs disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Record index (0-based) of the first disagreement.
    pub index: usize,
    /// The left log's record at `index` (`None`: left ended early).
    pub left: Option<TraceRecord>,
    /// The right log's record at `index` (`None`: right ended early).
    pub right: Option<TraceRecord>,
    /// Up to [`DIFF_CONTEXT`] shared records immediately before
    /// `index`, oldest first.
    pub context: Vec<TraceRecord>,
}

/// Outcome of [`diff_logs`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDiff {
    /// Number of leading records the two logs share.
    pub common_prefix: usize,
    /// Record count of the left log.
    pub len_left: usize,
    /// Record count of the right log.
    pub len_right: usize,
    /// The first disagreement, or `None` when the logs are identical.
    pub divergence: Option<Divergence>,
}

impl TraceDiff {
    /// `true` when the two logs are record-for-record identical.
    pub fn is_clean(&self) -> bool {
        self.divergence.is_none()
    }
}

impl fmt::Display for TraceDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.divergence {
            None => write!(f, "logs identical ({} records)", self.len_left),
            Some(d) => {
                writeln!(
                    f,
                    "first divergence at record {} (left: {} records, right: {} records)",
                    d.index, self.len_left, self.len_right
                )?;
                for (i, r) in d.context.iter().enumerate() {
                    let idx = d.index - d.context.len() + i;
                    writeln!(f, "  #{idx} [round {:>4}] {}", r.round, r.event)?;
                }
                match &d.left {
                    Some(r) => writeln!(f, "- #{} [round {:>4}] {}", d.index, r.round, r.event)?,
                    None => writeln!(f, "- #{} <end of log>", d.index)?,
                }
                match &d.right {
                    Some(r) => write!(f, "+ #{} [round {:>4}] {}", d.index, r.round, r.event),
                    None => write!(f, "+ #{} <end of log>", d.index),
                }
            }
        }
    }
}

/// Aligns two logs record by record and reports the first divergence
/// (with up to [`DIFF_CONTEXT`] shared records of context). Two logs of
/// different lengths whose shared prefix is clean diverge at the end of
/// the shorter one.
pub fn diff_logs(left: &TraceLog, right: &TraceLog) -> TraceDiff {
    let a = left.records();
    let b = right.records();
    let common_prefix = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
    let divergence = if common_prefix == a.len() && common_prefix == b.len() {
        None
    } else {
        let start = common_prefix.saturating_sub(DIFF_CONTEXT);
        Some(Divergence {
            index: common_prefix,
            left: a.get(common_prefix).cloned(),
            right: b.get(common_prefix).cloned(),
            context: a[start..common_prefix].to_vec(),
        })
    };
    TraceDiff {
        common_prefix,
        len_left: a.len(),
        len_right: b.len(),
        divergence,
    }
}

/// Outcome of [`shrink_fault_plan`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShrinkReport {
    /// The minimized schedule (equal to the input when the oracle never
    /// accepted the full plan).
    pub plan: FaultPlan,
    /// Whether the *input* plan failed the oracle at all. When `false`
    /// nothing was shrunk — there is no failure to preserve.
    pub reproduced: bool,
    /// How many times the oracle ran (re-executions are the expensive
    /// part; this is the number callers budget against).
    pub oracle_calls: usize,
    /// Scheduled batches in the input plan.
    pub initial_batches: usize,
}

impl ShrinkReport {
    /// Batches removed by the shrink.
    pub fn removed_batches(&self) -> usize {
        self.initial_batches - self.plan.events().len()
    }
}

/// Delta-debugging minimizer over a fault schedule.
///
/// `still_fails` re-runs the scenario under a candidate schedule and
/// returns `true` when the failure still reproduces. The input plan is
/// checked first; if it does not fail, the plan is returned unchanged
/// with [`ShrinkReport::reproduced`] `false`. Otherwise *ddmin* runs
/// over the scheduled batches until dropping any single batch makes the
/// failure vanish, then over the victim list of every surviving
/// [`FaultEvent::KillNodes`] batch. The result is guaranteed to fail
/// the oracle.
///
/// Determinism: this function is a pure fold over the oracle's answers,
/// so a deterministic oracle gives a bit-identical minimal schedule on
/// every rerun.
pub fn shrink_fault_plan(
    plan: &FaultPlan,
    mut still_fails: impl FnMut(&FaultPlan) -> bool,
) -> ShrinkReport {
    let mut oracle_calls = 0usize;
    let batches: Vec<ScheduledFault> = plan.events().to_vec();
    let mut test_batches = |candidate: &[ScheduledFault]| {
        oracle_calls += 1;
        still_fails(&rebuild(candidate))
    };
    if !test_batches(&batches) {
        return ShrinkReport {
            plan: plan.clone(),
            reproduced: false,
            oracle_calls,
            initial_batches: batches.len(),
        };
    }
    let mut minimal = ddmin(&batches, &mut test_batches);
    // Second pass: shrink the victim list inside each surviving
    // KillNodes batch (the other event kinds have no list to shrink).
    for i in 0..minimal.len() {
        let ScheduledFault {
            round,
            event: FaultEvent::KillNodes(victims),
        } = &minimal[i]
        else {
            continue;
        };
        let (round, victims) = (*round, victims.clone());
        let mut test_victims = |candidate: &[crate::node::NodeId]| {
            let mut trial = minimal.clone();
            trial[i] = ScheduledFault {
                round,
                event: FaultEvent::KillNodes(candidate.to_vec()),
            };
            oracle_calls += 1;
            still_fails(&rebuild(&trial))
        };
        let kept = ddmin(&victims, &mut test_victims);
        minimal[i] = ScheduledFault {
            round,
            event: FaultEvent::KillNodes(kept),
        };
    }
    ShrinkReport {
        plan: rebuild(&minimal),
        reproduced: true,
        oracle_calls,
        initial_batches: batches.len(),
    }
}

/// Rebuilds a [`FaultPlan`] from a batch subset, preserving the stable
/// round ordering.
fn rebuild(batches: &[ScheduledFault]) -> FaultPlan {
    batches
        .iter()
        .fold(FaultPlan::new(), |p, b| p.at(b.round, b.event.clone()))
}

/// Zeller's ddmin over a list: the input is assumed to fail `test`;
/// returns a sublist that still fails and from which no chunk of the
/// current granularity can be dropped. Runs down to single-element
/// granularity, so the result is 1-minimal.
fn ddmin<T: Clone>(items: &[T], test: &mut impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut current: Vec<T> = items.to_vec();
    if current.len() == 1 && test(&[]) {
        return Vec::new();
    }
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let complement: Vec<T> = current[..start]
                .iter()
                .chain(current[end..].iter())
                .cloned()
                .collect();
            if test(&complement) {
                current = complement;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if granularity >= current.len() {
                break;
            }
            granularity = (granularity * 2).min(current.len());
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::trace::TraceEvent;

    fn ev(process: u64) -> TraceEvent {
        TraceEvent::ProcessConverged { process, moves: 1 }
    }

    fn log_of(processes: &[u64]) -> TraceLog {
        let mut log = TraceLog::new();
        for (i, p) in processes.iter().enumerate() {
            log.record(i as u64, ev(*p));
        }
        log
    }

    #[test]
    fn identical_logs_diff_clean() {
        let a = log_of(&[1, 2, 3]);
        let d = diff_logs(&a, &a.clone());
        assert!(d.is_clean());
        assert_eq!(d.common_prefix, 3);
        assert!(d.to_string().contains("identical"));
    }

    #[test]
    fn diff_pinpoints_first_divergent_record_with_context() {
        let a = log_of(&[1, 2, 3, 4, 5, 6]);
        let b = log_of(&[1, 2, 3, 4, 9, 6]);
        let d = diff_logs(&a, &b);
        assert!(!d.is_clean());
        let div = d.divergence.clone().expect("diverges");
        assert_eq!(div.index, 4);
        assert_eq!(div.left, Some(a.records()[4].clone()));
        assert_eq!(div.right, Some(b.records()[4].clone()));
        assert_eq!(div.context.len(), DIFF_CONTEXT);
        assert_eq!(div.context[0], a.records()[1].clone());
        let rendered = d.to_string();
        assert!(rendered.contains("record 4"), "{rendered}");
        assert!(rendered.contains("- #4"), "{rendered}");
        assert!(rendered.contains("+ #4"), "{rendered}");
    }

    #[test]
    fn diff_flags_early_termination() {
        let a = log_of(&[1, 2, 3]);
        let b = log_of(&[1, 2]);
        let d = diff_logs(&a, &b);
        let div = d.divergence.clone().expect("diverges");
        assert_eq!(div.index, 2);
        assert!(div.left.is_some());
        assert!(div.right.is_none());
        assert!(d.to_string().contains("<end of log>"));
        // Context shorter than DIFF_CONTEXT near the start of the log.
        let d2 = diff_logs(&log_of(&[7]), &log_of(&[8]));
        assert_eq!(d2.divergence.expect("diverges").context.len(), 0);
    }

    fn plan_of(rounds: &[u64]) -> FaultPlan {
        rounds.iter().fold(FaultPlan::new(), |p, r| {
            p.at(
                *r,
                FaultEvent::KillNodes(vec![NodeId::new(*r as u32), NodeId::new(100 + *r as u32)]),
            )
        })
    }

    #[test]
    fn shrinker_finds_a_single_guilty_batch() {
        // Failure reproduces iff a batch at round 5 is present.
        let plan = plan_of(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let report = shrink_fault_plan(&plan, |p| p.events().iter().any(|e| e.round == 5));
        assert!(report.reproduced);
        assert_eq!(report.plan.events().len(), 1);
        assert_eq!(report.plan.events()[0].round, 5);
        assert_eq!(report.initial_batches, 8);
        assert_eq!(report.removed_batches(), 7);
        assert!(report.oracle_calls > 1);
    }

    #[test]
    fn shrinker_minimizes_kill_lists_inside_surviving_batches() {
        // Failure needs node 105 to die; everything else is noise.
        let plan = plan_of(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let victim = NodeId::new(105);
        let report = shrink_fault_plan(&plan, |p| {
            p.events().iter().any(|e| match &e.event {
                FaultEvent::KillNodes(ids) => ids.contains(&victim),
                _ => false,
            })
        });
        assert!(report.reproduced);
        assert_eq!(report.plan.events().len(), 1);
        assert_eq!(
            report.plan.events()[0].event,
            FaultEvent::KillNodes(vec![victim])
        );
    }

    #[test]
    fn shrinker_keeps_conjunctive_causes() {
        // 1-minimality, not global minimality: both rounds 2 and 6 are
        // needed, and both survive.
        let plan = plan_of(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let report = shrink_fault_plan(&plan, |p| {
            let rounds: Vec<u64> = p.events().iter().map(|e| e.round).collect();
            rounds.contains(&2) && rounds.contains(&6)
        });
        assert!(report.reproduced);
        let rounds: Vec<u64> = report.plan.events().iter().map(|e| e.round).collect();
        assert_eq!(rounds, vec![2, 6]);
    }

    #[test]
    fn shrinker_reports_non_reproducing_plans() {
        let plan = plan_of(&[1, 2, 3]);
        let report = shrink_fault_plan(&plan, |_| false);
        assert!(!report.reproduced);
        assert_eq!(report.plan, plan);
        assert_eq!(report.oracle_calls, 1);
        assert_eq!(report.removed_batches(), 0);
    }

    #[test]
    fn shrinker_is_deterministic_across_reruns() {
        let plan = plan_of(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        let oracle = |p: &FaultPlan| p.events().iter().filter(|e| e.round % 3 == 0).count() >= 2;
        let a = shrink_fault_plan(&plan, oracle);
        let b = shrink_fault_plan(&plan, oracle);
        assert_eq!(a, b);
        assert!(oracle(&a.plan), "result must still fail");
    }

    #[test]
    fn shrinker_can_reach_the_empty_plan() {
        // An oracle that always fails shrinks to nothing.
        let plan = plan_of(&[4]);
        let report = shrink_fault_plan(&plan, |_| true);
        assert!(report.reproduced);
        assert!(report.plan.is_empty());
    }
}
