//! Network models for the event-driven engine: configurable latency,
//! loss and interference between cell-level actors.
//!
//! The classic round loop bills a message the instant a head decides to
//! send it — delivery is an axiom. The event engine routes every
//! inter-cell envelope through a [`NetLink`] instead, and the link's
//! [`NetModelSpec`] decides its fate: delivered after some delay, or
//! dropped. Three properties are load-bearing:
//!
//! * **Coordinate-addressed weather.** A message's fate is a pure
//!   function of `(net_seed, from_cell, to_cell, n)` where `n` counts
//!   messages on that directed link — never of global draw order. Two
//!   schemes replaying the same trial seed therefore face the identical
//!   loss pattern on every link ("the weather is scheme-invariant"),
//!   and campaign workers can route in any order without perturbing
//!   fates.
//! * **Separate streams.** Link randomness never touches the
//!   protocol's run RNG: under [`NetModelSpec::Ideal`] a run draws the
//!   byte-identical random sequence as the classic round loop, which is
//!   what makes the engine's conformance contract provable.
//! * **Integer specs.** [`NetModelSpec`] carries only integers
//!   (parts-per-million loss, tick latency, millimeter geometry) so it
//!   stays `Copy + Eq + Hash` and can ride inside
//!   `DriveMode::EventDriven` as a campaign axis.
//!
//! [`ProtocolHealth`] is the observable outcome block: the event engine
//! counts what the synchronous model defines away — duplicate
//! initiations, lost cascades, stalled repairs.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

use crate::rng::SimRng;

/// The fate of one routed envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Delivered after `extra` ticks beyond the engine's one-tick base
    /// latency (0 = next tick, the classic round cadence).
    Deliver(u64),
    /// Lost in transit; the receiver never learns it existed.
    Drop,
}

/// Declarative network-model selection — the `net` payload of
/// `DriveMode::EventDriven` and the latency×loss axes of degraded
/// campaigns. All fields are integers so the spec is `Copy + Eq + Hash`
/// and serializes into stable artifact tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum NetModelSpec {
    /// Every message delivered next tick — the conformance baseline
    /// that must reproduce the classic runner byte-for-byte.
    #[default]
    Ideal,
    /// Every message delivered after a fixed number of ticks (≥ 1; a
    /// configured 0 is read as 1, the minimum physical latency).
    FixedLatency {
        /// Delivery latency in ticks.
        ticks: u32,
    },
    /// Independent per-message loss with probability
    /// `loss_ppm / 1_000_000`, surviving messages delivered after
    /// `latency` ticks (≥ 1).
    Bernoulli {
        /// Loss probability in parts per million (clamped to 10^6).
        loss_ppm: u32,
        /// Delivery latency of surviving messages, in ticks.
        latency: u32,
    },
    /// A jamming disk: any message with an endpoint strictly inside the
    /// disk is dropped; everything else is delivered next tick.
    /// Geometry is in millimeters so the spec stays integral.
    Jammer {
        /// Disk center x in millimeters.
        x_mm: u32,
        /// Disk center y in millimeters.
        y_mm: u32,
        /// Disk radius in millimeters.
        radius_mm: u32,
    },
}

impl NetModelSpec {
    /// Effective delivery latency in ticks (always ≥ 1).
    pub fn latency_ticks(&self) -> u32 {
        match *self {
            NetModelSpec::Ideal | NetModelSpec::Jammer { .. } => 1,
            NetModelSpec::FixedLatency { ticks } => ticks.max(1),
            NetModelSpec::Bernoulli { latency, .. } => latency.max(1),
        }
    }

    /// Loss probability in parts per million (0 for loss-free models).
    pub fn loss_ppm(&self) -> u32 {
        match *self {
            NetModelSpec::Bernoulli { loss_ppm, .. } => loss_ppm.min(1_000_000),
            _ => 0,
        }
    }

    /// Stable, filesystem-safe token for artifact names and replay
    /// metadata; [`NetModelSpec::parse_token`] inverts it.
    pub fn token(&self) -> String {
        match *self {
            NetModelSpec::Ideal => "ideal".into(),
            NetModelSpec::FixedLatency { ticks } => format!("lat{ticks}"),
            NetModelSpec::Bernoulli { loss_ppm, latency } => {
                format!("loss{loss_ppm}-lat{latency}")
            }
            NetModelSpec::Jammer {
                x_mm,
                y_mm,
                radius_mm,
            } => format!("jam{x_mm}x{y_mm}r{radius_mm}"),
        }
    }

    /// Parses a [`NetModelSpec::token`] back into the spec.
    pub fn parse_token(s: &str) -> Option<NetModelSpec> {
        if s == "ideal" {
            return Some(NetModelSpec::Ideal);
        }
        if let Some(rest) = s.strip_prefix("loss") {
            let (loss, lat) = rest.split_once("-lat")?;
            return Some(NetModelSpec::Bernoulli {
                loss_ppm: loss.parse().ok()?,
                latency: lat.parse().ok()?,
            });
        }
        if let Some(rest) = s.strip_prefix("lat") {
            return Some(NetModelSpec::FixedLatency {
                ticks: rest.parse().ok()?,
            });
        }
        if let Some(rest) = s.strip_prefix("jam") {
            let (x, rest) = rest.split_once('x')?;
            let (y, r) = rest.split_once('r')?;
            return Some(NetModelSpec::Jammer {
                x_mm: x.parse().ok()?,
                y_mm: y.parse().ok()?,
                radius_mm: r.parse().ok()?,
            });
        }
        None
    }

    /// Builds the stateful link for one run. `seed` addresses the
    /// link's RNG streams; derive it from the trial seed so it is
    /// independent of the protocol's run RNG.
    pub fn link(self, seed: u64) -> NetLink {
        NetLink {
            spec: self,
            seed,
            pair_counts: HashMap::new(),
            health: ProtocolHealth::default(),
        }
    }
}

impl fmt::Display for NetModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.token())
    }
}

/// One endpoint of a routed envelope: the dense cell index (the RNG
/// stream coordinate) plus the cell-center position in meters (the
/// geometry the jammer model tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Endpoint {
    /// Dense row-major cell index.
    pub cell: u64,
    /// Cell-center position in meters.
    pub pos: (f64, f64),
}

/// A live network link: the model plus its per-directed-pair message
/// counters and the health ledger. One per run.
#[derive(Debug, Clone)]
pub struct NetLink {
    spec: NetModelSpec,
    seed: u64,
    /// Messages routed so far on each directed `(from, to)` pair — the
    /// `n` of the coordinate-addressed fate function.
    pair_counts: HashMap<(u64, u64), u64>,
    /// Counters the run's `SchemeReport` surfaces as `ProtocolHealth`.
    pub health: ProtocolHealth,
}

impl NetLink {
    /// The spec this link was built from.
    pub fn spec(&self) -> NetModelSpec {
        self.spec
    }

    /// Whether this link is the loss-free, unit-latency baseline.
    pub fn is_ideal(&self) -> bool {
        self.spec == NetModelSpec::Ideal
    }

    /// The fate of the `n`-th message on a directed pair — pure in
    /// `(seed, from, to, n)`, independent of routing order elsewhere.
    fn fate_at(&self, from: Endpoint, to: Endpoint, n: u64) -> Fate {
        let extra = u64::from(self.spec.latency_ticks()) - 1;
        match self.spec {
            NetModelSpec::Ideal | NetModelSpec::FixedLatency { .. } => Fate::Deliver(extra),
            NetModelSpec::Bernoulli { loss_ppm, .. } => {
                let mut rng = SimRng::for_stream(self.seed, &[from.cell, to.cell, n]);
                if rng.next_u64() % 1_000_000 < u64::from(loss_ppm.min(1_000_000)) {
                    Fate::Drop
                } else {
                    Fate::Deliver(extra)
                }
            }
            NetModelSpec::Jammer {
                x_mm,
                y_mm,
                radius_mm,
            } => {
                let c = (f64::from(x_mm) / 1000.0, f64::from(y_mm) / 1000.0);
                let r = f64::from(radius_mm) / 1000.0;
                let inside = |p: (f64, f64)| {
                    let (dx, dy) = (p.0 - c.0, p.1 - c.1);
                    dx * dx + dy * dy < r * r
                };
                if inside(from.pos) || inside(to.pos) {
                    Fate::Drop
                } else {
                    Fate::Deliver(extra)
                }
            }
        }
    }

    /// Routes one inter-cell envelope, advancing the pair counter and
    /// the health ledger.
    pub fn route(&mut self, from: Endpoint, to: Endpoint) -> Fate {
        let n = *self.pair_counts.get(&(from.cell, to.cell)).unwrap_or(&0);
        let fate = self.fate_at(from, to, n);
        self.pair_counts.insert((from.cell, to.cell), n + 1);
        self.health.messages_sent += 1;
        if fate == Fate::Drop {
            self.health.messages_dropped += 1;
        }
        fate
    }

    /// Routes a same-tick sense (a 1-hop occupancy probe): the carrier
    /// either comes back clean or is jammed/lost — there is no latency
    /// to a failed carrier sense. Returns `true` when the probe got
    /// through.
    pub fn sense(&mut self, from: Endpoint, to: Endpoint) -> bool {
        self.route(from, to) != Fate::Drop
    }

    /// Accounts an intra-cell message (head ↔ co-located spare). The
    /// cell is a single radio neighborhood, so these never traverse the
    /// lossy inter-cell channel: always delivered, still counted.
    pub fn local(&mut self) {
        self.health.messages_sent += 1;
    }
}

/// Observable protocol-health outcomes of one event-driven run — the
/// failure modes the synchronous round model defines away, counted
/// instead of assumed impossible. All counters are zero for classic
/// runs and for event runs under [`NetModelSpec::Ideal`] (except the
/// message tallies, which count real envelopes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ProtocolHealth {
    /// Envelopes handed to the network (probes and acks included —
    /// a superset of the billed `Metrics::messages`).
    pub messages_sent: u64,
    /// Envelopes the network dropped.
    pub messages_dropped: u64,
    /// Initiations for a hole that already had a live owner the
    /// monitor could not know about — the paper's "one and only one
    /// initiation per hole" failing observably.
    pub duplicate_initiations: u64,
    /// Cascade-carrying notifications the network lost: the backward
    /// walk's baton vanished in transit.
    pub lost_cascades: u64,
    /// Processes that ended the run still waiting on a baton that
    /// never arrived.
    pub stalled_repairs: u64,
    /// Cascades whose target vacancy had already been refilled (by a
    /// duplicate) when their baton finally arrived.
    pub superseded_repairs: u64,
}

impl ProtocolHealth {
    /// `true` when no degraded-network failure mode was observed
    /// (messages may still have been counted).
    pub fn is_clean(&self) -> bool {
        self.messages_dropped == 0
            && self.duplicate_initiations == 0
            && self.lost_cascades == 0
            && self.stalled_repairs == 0
            && self.superseded_repairs == 0
    }

    /// Folds another run's counters into this one (campaign cells).
    pub fn merge(&mut self, other: &ProtocolHealth) {
        self.messages_sent += other.messages_sent;
        self.messages_dropped += other.messages_dropped;
        self.duplicate_initiations += other.duplicate_initiations;
        self.lost_cascades += other.lost_cascades;
        self.stalled_repairs += other.stalled_repairs;
        self.superseded_repairs += other.superseded_repairs;
    }
}

impl fmt::Display for ProtocolHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent {} dropped {} duplicates {} lost {} stalled {} superseded {}",
            self.messages_sent,
            self.messages_dropped,
            self.duplicate_initiations,
            self.lost_cascades,
            self.stalled_repairs,
            self.superseded_repairs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(cell: u64) -> Endpoint {
        Endpoint {
            cell,
            pos: (cell as f64, 0.0),
        }
    }

    #[test]
    fn ideal_and_fixed_latency_never_drop() {
        let mut ideal = NetModelSpec::Ideal.link(1);
        let mut fixed = NetModelSpec::FixedLatency { ticks: 4 }.link(1);
        for i in 0..100 {
            assert_eq!(ideal.route(ep(i), ep(i + 1)), Fate::Deliver(0));
            assert_eq!(fixed.route(ep(i), ep(i + 1)), Fate::Deliver(3));
        }
        assert_eq!(ideal.health.messages_dropped, 0);
        assert_eq!(fixed.health.messages_sent, 100);
    }

    #[test]
    fn zero_latency_is_clamped_to_the_physical_minimum() {
        assert_eq!(NetModelSpec::FixedLatency { ticks: 0 }.latency_ticks(), 1);
        assert_eq!(
            NetModelSpec::Bernoulli {
                loss_ppm: 0,
                latency: 0
            }
            .latency_ticks(),
            1
        );
        let mut link = NetModelSpec::FixedLatency { ticks: 0 }.link(9);
        assert_eq!(link.route(ep(0), ep(1)), Fate::Deliver(0));
    }

    #[test]
    fn bernoulli_fate_is_coordinate_addressed() {
        let spec = NetModelSpec::Bernoulli {
            loss_ppm: 300_000,
            latency: 1,
        };
        // The nth message on a pair has the same fate regardless of
        // what other links carried first.
        let mut a = spec.link(7);
        let mut b = spec.link(7);
        for i in 0..50 {
            b.route(ep(90 + i), ep(91 + i)); // unrelated traffic
        }
        let fates_a: Vec<Fate> = (0..64).map(|_| a.route(ep(3), ep(4))).collect();
        let fates_b: Vec<Fate> = (0..64).map(|_| b.route(ep(3), ep(4))).collect();
        assert_eq!(fates_a, fates_b);
        // A 30% model drops some but not all of 64 messages.
        let drops = fates_a.iter().filter(|f| **f == Fate::Drop).count();
        assert!(drops > 0 && drops < 64, "drops = {drops}");
        // Different seeds shift the weather.
        let mut c = spec.link(8);
        let fates_c: Vec<Fate> = (0..64).map(|_| c.route(ep(3), ep(4))).collect();
        assert_ne!(fates_a, fates_c);
    }

    #[test]
    fn bernoulli_extremes_behave() {
        let mut never = NetModelSpec::Bernoulli {
            loss_ppm: 0,
            latency: 2,
        }
        .link(3);
        let mut always = NetModelSpec::Bernoulli {
            loss_ppm: 1_000_000,
            latency: 1,
        }
        .link(3);
        // An overflowing ppm is clamped, not wrapped.
        let mut over = NetModelSpec::Bernoulli {
            loss_ppm: u32::MAX,
            latency: 1,
        }
        .link(3);
        for i in 0..32 {
            assert_eq!(never.route(ep(0), ep(i)), Fate::Deliver(1));
            assert_eq!(always.route(ep(0), ep(i)), Fate::Drop);
            assert_eq!(over.route(ep(0), ep(i)), Fate::Drop);
        }
    }

    #[test]
    fn jammer_drops_inside_the_disk_only() {
        let spec = NetModelSpec::Jammer {
            x_mm: 10_000,
            y_mm: 10_000,
            radius_mm: 5_000,
        };
        let mut link = spec.link(1);
        let inside = Endpoint {
            cell: 0,
            pos: (10.0, 12.0),
        };
        let rim = Endpoint {
            cell: 1,
            pos: (10.0, 15.0), // exactly on the rim: outside (strict disk)
        };
        let outside = Endpoint {
            cell: 2,
            pos: (30.0, 30.0),
        };
        assert_eq!(link.route(inside, outside), Fate::Drop);
        assert_eq!(link.route(outside, inside), Fate::Drop);
        assert_eq!(link.route(outside, rim), Fate::Deliver(0));
        assert_eq!(link.route(rim, outside), Fate::Deliver(0));
        assert_eq!(link.health.messages_dropped, 2);
    }

    #[test]
    fn tokens_round_trip() {
        let specs = [
            NetModelSpec::Ideal,
            NetModelSpec::FixedLatency { ticks: 3 },
            NetModelSpec::Bernoulli {
                loss_ppm: 300_000,
                latency: 2,
            },
            NetModelSpec::Jammer {
                x_mm: 5,
                y_mm: 6,
                radius_mm: 7,
            },
        ];
        for spec in specs {
            let token = spec.token();
            assert_eq!(NetModelSpec::parse_token(&token), Some(spec), "{token}");
            assert!(
                token.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'),
                "token {token} must stay filesystem-safe"
            );
        }
        assert_eq!(NetModelSpec::parse_token("weather"), None);
        assert_eq!(NetModelSpec::parse_token("latx"), None);
        assert_eq!(NetModelSpec::parse_token("loss5"), None);
    }

    #[test]
    fn health_merge_and_cleanliness() {
        let mut h = ProtocolHealth::default();
        assert!(h.is_clean());
        h.merge(&ProtocolHealth {
            messages_sent: 5,
            messages_dropped: 1,
            duplicate_initiations: 2,
            lost_cascades: 1,
            stalled_repairs: 1,
            superseded_repairs: 0,
        });
        assert!(!h.is_clean());
        assert_eq!(h.messages_sent, 5);
        assert_eq!(h.duplicate_initiations, 2);
        let clean = ProtocolHealth {
            messages_sent: 10,
            ..ProtocolHealth::default()
        };
        assert!(clean.is_clean(), "message traffic alone is not a failure");
        assert!(clean.to_string().contains("sent 10"));
    }

    #[test]
    fn sense_and_local_feed_the_ledger() {
        let mut link = NetModelSpec::Ideal.link(0);
        assert!(link.sense(ep(1), ep(2)));
        link.local();
        assert_eq!(link.health.messages_sent, 2);
        assert_eq!(link.health.messages_dropped, 0);
    }
}
