//! Sensor nodes: identity, position, status and battery.

use serde::{Deserialize, Serialize};
use std::fmt;

use wsn_geometry::Point2;

use crate::energy::Battery;

/// Stable identifier of a deployed sensor node.
///
/// Identifiers are dense indices assigned at deployment time (node `k` is
/// the `k`-th deployed sensor), which lets network state use `Vec`-backed
/// tables instead of hash maps.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates an id from its dense index.
    #[inline]
    pub const fn new(index: u32) -> NodeId {
        NodeId(index)
    }

    /// The dense index, for table lookups.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw id value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Whether a node participates in the network collaboration.
///
/// The paper's model: faulty and misbehaving sensors are *disabled* from
/// the collaboration; the remaining *enabled* nodes constitute the WSN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum NodeStatus {
    /// Participating in the network (head or spare).
    #[default]
    Enabled,
    /// Excluded from the collaboration (failed, misbehaving, or jammed).
    Disabled,
}

impl NodeStatus {
    /// `true` for [`NodeStatus::Enabled`].
    #[inline]
    pub fn is_enabled(self) -> bool {
        matches!(self, NodeStatus::Enabled)
    }
}

impl fmt::Display for NodeStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeStatus::Enabled => write!(f, "enabled"),
            NodeStatus::Disabled => write!(f, "disabled"),
        }
    }
}

/// A deployed sensor node.
///
/// ```
/// use wsn_simcore::{NodeId, SensorNode};
/// use wsn_geometry::Point2;
///
/// let n = SensorNode::new(NodeId::new(0), Point2::new(1.0, 2.0));
/// assert!(n.status().is_enabled());
/// assert_eq!(n.travelled(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorNode {
    id: NodeId,
    position: Point2,
    status: NodeStatus,
    battery: Battery,
    travelled: f64,
    moves: u64,
}

impl SensorNode {
    /// Creates an enabled node at `position` with a full default battery.
    pub fn new(id: NodeId, position: Point2) -> SensorNode {
        SensorNode {
            id,
            position,
            status: NodeStatus::Enabled,
            battery: Battery::default(),
            travelled: 0.0,
            moves: 0,
        }
    }

    /// Creates an enabled node with an explicit battery.
    pub fn with_battery(id: NodeId, position: Point2, battery: Battery) -> SensorNode {
        SensorNode {
            battery,
            ..SensorNode::new(id, position)
        }
    }

    /// Node identifier.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current position.
    #[inline]
    pub fn position(&self) -> Point2 {
        self.position
    }

    /// Enabled/disabled status.
    #[inline]
    pub fn status(&self) -> NodeStatus {
        self.status
    }

    /// Battery state.
    #[inline]
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// Mutable battery state (for energy accounting by the engine).
    #[inline]
    pub fn battery_mut(&mut self) -> &mut Battery {
        &mut self.battery
    }

    /// Total distance travelled so far, meters.
    #[inline]
    pub fn travelled(&self) -> f64 {
        self.travelled
    }

    /// Number of completed movements.
    #[inline]
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Marks the node disabled (idempotent).
    pub fn disable(&mut self) {
        self.status = NodeStatus::Disabled;
    }

    /// Re-enables the node (used by repair/what-if scenarios).
    pub fn enable(&mut self) {
        self.status = NodeStatus::Enabled;
    }

    /// Moves the node to `target`, accumulating travelled distance and the
    /// move counter, and returns the distance covered by this movement.
    pub fn move_to(&mut self, target: Point2) -> f64 {
        let d = self.position.distance(target);
        self.position = target;
        self.travelled += d;
        self.moves += 1;
        d
    }
}

impl fmt::Display for SensorNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{} [{}]", self.id, self.position, self.status)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.raw(), 42);
        assert_eq!(NodeId::from(42u32), id);
        assert_eq!(id.to_string(), "n42");
    }

    #[test]
    fn status_transitions() {
        let mut n = SensorNode::new(NodeId::new(0), Point2::ORIGIN);
        assert!(n.status().is_enabled());
        n.disable();
        assert!(!n.status().is_enabled());
        n.disable(); // idempotent
        assert!(!n.status().is_enabled());
        n.enable();
        assert!(n.status().is_enabled());
    }

    #[test]
    fn movement_accumulates_distance_and_count() {
        let mut n = SensorNode::new(NodeId::new(1), Point2::ORIGIN);
        let d1 = n.move_to(Point2::new(3.0, 4.0));
        assert_eq!(d1, 5.0);
        let d2 = n.move_to(Point2::new(3.0, 0.0));
        assert_eq!(d2, 4.0);
        assert_eq!(n.travelled(), 9.0);
        assert_eq!(n.moves(), 2);
        assert_eq!(n.position(), Point2::new(3.0, 0.0));
    }

    #[test]
    fn display_nonempty() {
        let n = SensorNode::new(NodeId::new(7), Point2::new(1.0, 1.0));
        assert!(n.to_string().contains("n7"));
        assert_eq!(NodeStatus::Enabled.to_string(), "enabled");
        assert_eq!(NodeStatus::Disabled.to_string(), "disabled");
    }
}
