//! Virtual-clock event scheduler: a binary-heap priority queue with
//! deterministic FIFO tie-breaking on `(time, seq)`.
//!
//! The event engine schedules every in-flight envelope here. Two
//! entries at the same virtual time pop in the order they were
//! scheduled — a monotonically increasing sequence number breaks ties,
//! so the drain order is a pure function of the schedule calls and the
//! engine stays bit-reproducible across runs and platforms.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One scheduled entry: the payload plus its `(time, seq)` key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<T> {
    /// Virtual time at which the entry becomes due.
    pub time: u64,
    /// Monotonic schedule order — the FIFO tie-break within a time.
    pub seq: u64,
    /// The scheduled payload.
    pub payload: T,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry<T> {
    key: Reverse<(u64, u64)>,
    payload: T,
}

impl<T: Eq> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<T: Eq> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-heap of timed events.
///
/// `pop_next` yields entries in strictly non-decreasing `(time, seq)`
/// order; `pop_due` drains only the entries due at or before a given
/// virtual time, which is how the round-synchronized engine interleaves
/// message delivery with protocol phases.
#[derive(Debug, Clone, Default)]
pub struct EventQueue<T: Eq> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T: Eq> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at virtual time `time`, returning the
    /// sequence number assigned to it.
    pub fn schedule(&mut self, time: u64, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            key: Reverse((time, seq)),
            payload,
        });
        seq
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The `(time, seq)` key of the earliest pending entry.
    pub fn peek_key(&self) -> Option<(u64, u64)> {
        self.heap.peek().map(|e| e.key.0)
    }

    /// Pops the earliest pending entry.
    pub fn pop_next(&mut self) -> Option<Scheduled<T>> {
        self.heap.pop().map(|e| Scheduled {
            time: e.key.0 .0,
            seq: e.key.0 .1,
            payload: e.payload,
        })
    }

    /// Pops the earliest entry if it is due at or before `now`.
    pub fn pop_due(&mut self, now: u64) -> Option<Scheduled<T>> {
        match self.peek_key() {
            Some((t, _)) if t <= now => self.pop_next(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_queue_is_calm() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.peek_key(), None);
        assert_eq!(q.pop_next(), None);
        assert_eq!(q.pop_due(u64::MAX), None);
    }

    #[test]
    fn equal_times_pop_in_fifo_order() {
        let mut q = EventQueue::new();
        for label in ["a", "b", "c", "d"] {
            q.schedule(7, label);
        }
        let order: Vec<&str> = std::iter::from_fn(|| q.pop_next())
            .map(|s| s.payload)
            .collect();
        assert_eq!(order, ["a", "b", "c", "d"]);
    }

    #[test]
    fn pop_due_respects_the_clock() {
        let mut q = EventQueue::new();
        q.schedule(5, "late");
        q.schedule(0, "origin");
        q.schedule(2, "mid");
        assert_eq!(q.pop_due(0).map(|s| s.payload), Some("origin"));
        assert_eq!(q.pop_due(0), None);
        assert_eq!(q.pop_due(1), None);
        assert_eq!(q.pop_due(4).map(|s| s.payload), Some("mid"));
        assert_eq!(q.pop_due(5).map(|s| s.payload), Some("late"));
        assert!(q.is_empty());
    }

    #[test]
    fn extreme_times_are_ordinary_keys() {
        let mut q = EventQueue::new();
        q.schedule(u64::MAX, "end");
        q.schedule(0, "start");
        q.schedule(u64::MAX, "end2");
        assert_eq!(q.pop_next().map(|s| s.payload), Some("start"));
        let s = q.pop_next().unwrap();
        assert_eq!((s.payload, s.time), ("end", u64::MAX));
        assert_eq!(q.pop_next().map(|s| s.payload), Some("end2"));
    }

    proptest! {
        /// The pop sequence equals the sort-by-`(time, seq)` oracle:
        /// a stable sort of the scheduled entries by time.
        #[test]
        fn pop_sequence_matches_sort_oracle(times in proptest::collection::vec(0u64..50, 0..64)) {
            let mut q = EventQueue::new();
            let mut oracle: Vec<(u64, u64)> = Vec::new();
            for (i, &t) in times.iter().enumerate() {
                let seq = q.schedule(t, i);
                oracle.push((t, seq));
            }
            oracle.sort(); // seq is monotonic, so this is the (time, seq) order
            let mut popped = Vec::new();
            while let Some(s) = q.pop_next() {
                popped.push((s.time, s.seq));
                prop_assert_eq!(s.payload, s.seq as usize, "payload rides with its key");
            }
            prop_assert_eq!(popped, oracle);
        }

        /// Draining with `pop_due` at any cutoff yields exactly the
        /// due prefix of the oracle order.
        #[test]
        fn pop_due_drains_exactly_the_due_prefix(
            times in proptest::collection::vec(0u64..20, 0..48),
            cutoff in 0u64..20,
        ) {
            let mut q = EventQueue::new();
            let mut oracle: Vec<(u64, u64)> = Vec::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(t, i);
                oracle.push((t, i as u64));
            }
            oracle.sort();
            let due: Vec<(u64, u64)> = oracle.iter().copied().filter(|&(t, _)| t <= cutoff).collect();
            let mut drained = Vec::new();
            while let Some(s) = q.pop_due(cutoff) {
                drained.push((s.time, s.seq));
            }
            prop_assert_eq!(q.len(), oracle.len() - due.len());
            prop_assert_eq!(drained, due);
        }
    }
}
