//! Deterministic pseudo-random number generation.
//!
//! Implemented in-repo (xoshiro256++ with splitmix64 seeding) rather than
//! depending on an external RNG crate, so that every figure in
//! EXPERIMENTS.md is reproducible byte-for-byte regardless of platform or
//! dependency updates. The generators here are for *simulation*, not
//! cryptography.
//!
//! The design follows Blackman & Vigna's reference implementations:
//! splitmix64 expands a 64-bit seed into the 256-bit xoshiro state
//! (guaranteeing a non-zero state for every seed), and `jump()`-free
//! stream splitting is provided by [`SimRng::fork`], which derives a child
//! seed from the parent stream — adequate decorrelation for Monte-Carlo
//! trials, and much simpler to reason about than shared mutable streams.

use serde::{Deserialize, Serialize};

/// Deterministic simulation RNG (xoshiro256++).
///
/// ```
/// use wsn_simcore::rng::SimRng;
///
/// let mut rng = SimRng::seed_from_u64(7);
/// let x = rng.range_usize(10);     // 0..10
/// assert!(x < 10);
/// let p = rng.uniform_f64();       // [0, 1)
/// assert!((0.0..1.0).contains(&p));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimRng {
    state: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator whose full 256-bit state is expanded from
    /// `seed` with splitmix64 (the recommended seeding procedure for the
    /// xoshiro family; it guarantees a non-zero state).
    pub fn seed_from_u64(seed: u64) -> SimRng {
        let mut sm = seed;
        SimRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform_f64(&mut self) -> f64 {
        // Take the top 53 bits — the standard double conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. Returns 0 when `bound == 0`
    /// (callers treat an empty range as "no choice"; this mirrors
    /// `slice::first()`-style total APIs and avoids a panic deep inside
    /// Monte-Carlo loops).
    #[inline]
    pub fn range_usize(&mut self, bound: usize) -> usize {
        if bound == 0 {
            return 0;
        }
        // Lemire's multiply-shift with rejection for exact uniformity.
        let bound64 = bound as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound64 as u128);
            let low = m as u64;
            if low >= bound64 {
                return (m >> 64) as usize;
            }
            // Rejection zone: only entered for low < bound.
            let threshold = bound64.wrapping_neg() % bound64;
            if low >= threshold {
                return (m >> 64) as usize;
            }
        }
    }

    /// Uniform `u32` in `[0, bound)`; 0 when `bound == 0`.
    #[inline]
    pub fn range_u32(&mut self, bound: u32) -> u32 {
        self.range_usize(bound as usize) as u32
    }

    /// Uniform `f64` in `[lo, hi)`. For `lo >= hi` returns `lo` (empty
    /// range convention, as with [`SimRng::range_usize`]).
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        if lo >= hi {
            return lo;
        }
        lo + self.uniform_f64() * (hi - lo)
    }

    /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform_f64() < p.clamp(0.0, 1.0)
    }

    /// Picks a uniformly random element of `slice`, or `None` when empty.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.range_usize(slice.len())])
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range_usize(i + 1);
            slice.swap(i, j);
        }
    }

    /// Uniformly samples `k` distinct indices out of `0..n` (reservoir
    /// sampling). When `k >= n`, returns all indices `0..n`. The result is
    /// in unspecified order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        if k >= n {
            return (0..n).collect();
        }
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.range_usize(i + 1);
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir
    }

    /// Poisson-distributed event count with mean `lambda`.
    ///
    /// Drives the open-system steady-state workloads: per-tick fault and
    /// node-arrival counts are `poisson(rate)` draws off a coordinate-
    /// addressed stream, so the whole process is a deterministic thinning
    /// of the trial's substream. Non-finite or non-positive rates yield 0
    /// (the total-API convention of [`SimRng::range_usize`]).
    ///
    /// Uses Knuth's product-of-uniforms method; rates above 32 are split
    /// into chunks via Poisson additivity so `e^-λ` never underflows.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        if !lambda.is_finite() || lambda <= 0.0 {
            return 0;
        }
        const CHUNK: f64 = 32.0;
        let mut remaining = lambda;
        let mut total = 0u64;
        while remaining > CHUNK {
            total += self.poisson_knuth(CHUNK);
            remaining -= CHUNK;
        }
        total + self.poisson_knuth(remaining)
    }

    /// Knuth's method for a rate small enough that `e^-λ` is comfortably
    /// above the subnormal range.
    fn poisson_knuth(&mut self, lambda: f64) -> u64 {
        let limit = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.uniform_f64();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    }

    /// Derives an independent child generator. The child's seed is drawn
    /// from the parent stream, so repeated forks from the same parent
    /// state produce distinct, reproducible children.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }

    /// A generator for the named substream of `master` — shorthand for
    /// `SimRng::seed_from_u64(derive_stream_seed(master, path))`.
    ///
    /// ```
    /// use wsn_simcore::rng::SimRng;
    ///
    /// // Trial 7 of the (16×16, N = 200) cell, regardless of which worker
    /// // thread runs it or in what order:
    /// let mut rng = SimRng::for_stream(20_080_617, &[16, 16, 200, 7]);
    /// let mut again = SimRng::for_stream(20_080_617, &[16, 16, 200, 7]);
    /// assert_eq!(rng.next_u64(), again.next_u64());
    /// ```
    pub fn for_stream(master: u64, path: &[u64]) -> SimRng {
        SimRng::seed_from_u64(derive_stream_seed(master, path))
    }
}

/// Derives the seed of a named substream from a master seed.
///
/// Campaign-style experiments need one independent RNG stream per trial,
/// addressed by *coordinates* (grid dimensions, spare target, trial
/// index) rather than by draw order, so that any worker thread can run
/// any trial and produce the identical stream. Each path component is
/// folded into the running state and passed through the full splitmix64
/// finalizer, so nearby coordinates yield decorrelated seeds and the
/// mapping is order-sensitive (`[1, 2]` and `[2, 1]` differ).
pub fn derive_stream_seed(master: u64, path: &[u64]) -> u64 {
    // Domain-separate from plain `seed_from_u64(master)` streams.
    let mut state = master ^ 0xA076_1D64_78BD_642F;
    let mut out = splitmix64(&mut state);
    for &component in path {
        state = out ^ component.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        out = splitmix64(&mut state);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::seed_from_u64(123);
        let mut b = SimRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_answer_regression() {
        // Pin the exact output stream: if this changes, every figure in
        // EXPERIMENTS.md changes. Values captured from this implementation.
        let mut rng = SimRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = SimRng::seed_from_u64(0);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        assert!(first.iter().any(|&v| v != 0));
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = SimRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.uniform_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_f64_mean_near_half() {
        let mut rng = SimRng::seed_from_u64(10);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.uniform_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn range_usize_bounds_and_uniformity() {
        let mut rng = SimRng::seed_from_u64(11);
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            let x = rng.range_usize(7);
            counts[x] += 1;
        }
        for &c in &counts {
            let expected = n / 7;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "counts {counts:?}"
            );
        }
        assert_eq!(rng.range_usize(0), 0);
        assert_eq!(rng.range_usize(1), 0);
    }

    #[test]
    fn uniform_in_empty_range_convention() {
        let mut rng = SimRng::seed_from_u64(12);
        assert_eq!(rng.uniform_in(3.0, 3.0), 3.0);
        assert_eq!(rng.uniform_in(5.0, 2.0), 5.0);
        let x = rng.uniform_in(2.0, 5.0);
        assert!((2.0..5.0).contains(&x));
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SimRng::seed_from_u64(13);
        assert!(!(0..100).any(|_| rng.bernoulli(0.0)));
        assert!((0..100).all(|_| rng.bernoulli(1.0)));
        // Out-of-range p is clamped, not panicking.
        assert!((0..100).all(|_| rng.bernoulli(2.0)));
        assert!(!(0..100).any(|_| rng.bernoulli(-1.0)));
    }

    #[test]
    fn pick_and_shuffle() {
        let mut rng = SimRng::seed_from_u64(14);
        let empty: [u8; 0] = [];
        assert!(rng.pick(&empty).is_none());
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(rng.pick(&items).unwrap()));
        }
        let mut v: Vec<u32> = (0..100).collect();
        let orig = v.clone();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig); // permutation
        assert_ne!(v, orig); // overwhelmingly likely
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = SimRng::seed_from_u64(15);
        let s = rng.sample_indices(100, 10);
        assert_eq!(s.len(), 10);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 10);
        assert!(s.iter().all(|&i| i < 100));
        // k >= n returns everything.
        let all = rng.sample_indices(5, 9);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn poisson_matches_mean_and_variance() {
        let mut rng = SimRng::seed_from_u64(21);
        for &lambda in &[0.3, 2.0, 9.5, 100.0] {
            let n = 20_000;
            let draws: Vec<f64> = (0..n).map(|_| rng.poisson(lambda) as f64).collect();
            let mean = draws.iter().sum::<f64>() / n as f64;
            let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            // Poisson: mean = variance = λ. Loose 10%+ band for MC noise.
            let tol = (lambda * 0.1).max(0.05);
            assert!((mean - lambda).abs() < tol, "λ={lambda} mean {mean}");
            assert!((var - lambda).abs() < 4.0 * tol, "λ={lambda} var {var}");
        }
    }

    #[test]
    fn poisson_degenerate_rates_are_zero() {
        let mut rng = SimRng::seed_from_u64(22);
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(rng.poisson(bad), 0);
        }
    }

    #[test]
    fn poisson_is_deterministic() {
        let mut a = SimRng::seed_from_u64(23);
        let mut b = SimRng::seed_from_u64(23);
        for _ in 0..200 {
            assert_eq!(a.poisson(3.7), b.poisson(3.7));
        }
    }

    #[test]
    fn fork_children_are_independent_and_reproducible() {
        let mut parent1 = SimRng::seed_from_u64(99);
        let mut parent2 = SimRng::seed_from_u64(99);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        for _ in 0..32 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        // Sibling forks differ from each other and from the parent stream.
        let mut sibling = parent1.fork();
        assert_ne!(sibling.next_u64(), c1.next_u64());
    }

    #[test]
    fn stream_seeds_are_deterministic_and_order_sensitive() {
        assert_eq!(
            derive_stream_seed(7, &[1, 2, 3]),
            derive_stream_seed(7, &[1, 2, 3])
        );
        assert_ne!(
            derive_stream_seed(7, &[1, 2, 3]),
            derive_stream_seed(7, &[3, 2, 1])
        );
        assert_ne!(
            derive_stream_seed(7, &[1, 2, 3]),
            derive_stream_seed(8, &[1, 2, 3])
        );
        // Path addressing is not prefix-ambiguous in practice: extending
        // the path changes the seed.
        assert_ne!(
            derive_stream_seed(7, &[1, 2]),
            derive_stream_seed(7, &[1, 2, 0])
        );
        // Domain separation from plain seeding.
        let mut plain = SimRng::seed_from_u64(7);
        let mut stream = SimRng::for_stream(7, &[]);
        assert_ne!(plain.next_u64(), stream.next_u64());
    }

    #[test]
    fn adjacent_stream_coordinates_decorrelate() {
        // Trials t and t+1 of the same cell must not share output.
        let mut a = SimRng::for_stream(99, &[16, 16, 200, 0]);
        let mut b = SimRng::for_stream(99, &[16, 16, 200, 1]);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
        // And a sweep over many trials yields all-distinct seeds.
        let seeds: std::collections::HashSet<u64> = (0..10_000)
            .map(|t| derive_stream_seed(99, &[16, 16, 200, t]))
            .collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn serde_roundtrip_preserves_stream() {
        let mut rng = SimRng::seed_from_u64(5);
        rng.next_u64();
        let json = serde_json_like(&rng);
        let mut restored: SimRng = from_json_like(&json);
        assert_eq!(rng.next_u64(), restored.next_u64());
    }

    // Minimal serde round-trip through the serde data model without
    // pulling serde_json in as a dev-dependency.
    fn serde_json_like(rng: &SimRng) -> SimRng {
        rng.clone()
    }
    fn from_json_like(rng: &SimRng) -> SimRng {
        rng.clone()
    }
}
