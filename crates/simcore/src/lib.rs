//! Deterministic round-based simulation kernel for wireless-sensor-network
//! protocols.
//!
//! The paper reproduced by this workspace (*Mobility Control for Complete
//! Coverage in Wireless Sensor Networks*, Jiang et al., ICDCS 2008
//! Workshops) describes its control schemes "in a round-based system": in
//! every round each grid head observes its neighborhood, sends at most one
//! notification, and completes at most one movement before the next round
//! starts. This crate provides exactly that execution model, plus the
//! cross-cutting machinery every protocol needs:
//!
//! * [`rng::SimRng`] — a deterministic, seedable, forkable PRNG
//!   (xoshiro256++ seeded through splitmix64) written in-repo so that
//!   every experiment is byte-for-byte reproducible on every platform.
//! * [`node`] — sensor nodes with positions, enabled/disabled status and
//!   battery state.
//! * [`engine`] — the synchronous round loop with quiescence detection.
//! * [`event`] — the virtual-clock binary-heap scheduler behind the
//!   event-driven engine, with deterministic `(time, seq)` FIFO
//!   tie-breaking.
//! * [`net`] — network models (ideal, fixed-latency, Bernoulli loss,
//!   jammer disk) with coordinate-addressed RNG streams, plus the
//!   [`net::ProtocolHealth`] outcome block.
//! * [`fault`] — fault injection: random kills, targeted kills and a
//!   moving-jammer region model (after Xu et al., *Jamming sensor
//!   networks*, cited as \[8\] by the paper).
//! * [`energy`] — the movement/communication energy model used by the
//!   cost accounting.
//! * [`metrics`] — counters for movements, distance, messages and
//!   replacement processes.
//! * [`shutdown`] — the process-wide SIGINT/SIGTERM graceful-shutdown
//!   flag every long-running binary polls so checkpoints and ledgers
//!   flush instead of dying mid-write.
//! * [`trace`] — structured event log for debugging and for the
//!   examples, with lossless JSON-Lines and versioned binary codecs.
//! * [`replay`] — event-log diffing and delta-debugging fault-schedule
//!   shrinking over those logs.
//!
//! # Example
//!
//! ```
//! use wsn_simcore::rng::SimRng;
//!
//! let mut rng = SimRng::seed_from_u64(42);
//! let a = rng.uniform_f64();
//! let mut rng2 = SimRng::seed_from_u64(42);
//! assert_eq!(a, rng2.uniform_f64()); // fully deterministic
//! ```

// `deny`, not `forbid`: the [`shutdown`] module carries the workspace's
// single unsafe block — the two-line `signal(2)` FFI binding behind the
// SIGINT/SIGTERM graceful-shutdown flag — under a scoped allow. Every
// other module (and every other crate) still rejects unsafe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod engine;
pub mod event;
pub mod fault;
pub mod metrics;
pub mod net;
pub mod node;
pub mod replay;
pub mod rng;
pub mod shutdown;
pub mod trace;

pub use energy::{Battery, EnergyModel};
pub use engine::{
    ChangeDrivenProtocol, EngineError, Quiescence, RoundOutcome, RoundProtocol, RoundRunner,
    RunReport,
};
pub use event::{EventQueue, Scheduled};
pub use fault::{FaultEvent, FaultPlan, Jammer};
pub use metrics::Metrics;
pub use net::{Endpoint, Fate, NetLink, NetModelSpec, ProtocolHealth};
pub use node::{NodeId, NodeStatus, SensorNode};
pub use replay::{diff_logs, shrink_fault_plan, Divergence, ShrinkReport, TraceDiff};
pub use rng::{derive_stream_seed, SimRng};
pub use trace::{TraceCodecError, TraceEvent, TraceLog, TraceRecord};

/// A simulation round index (the paper's synchronous time step).
pub type Round = u64;
