//! Fault injection: the mechanism that creates the paper's "holes".
//!
//! The paper's premise is that sensors "can very easily fail or
//! misbehave" and that attackers can disable whole regions (its §1 cites
//! jamming attacks \[8\] that reduce node density in certain areas). This
//! module describes *when* and *which* nodes get disabled; the network
//! layer applies the events to its occupancy state.
//!
//! Three targeting modes cover the paper's scenarios plus the extension
//! experiments:
//!
//! * explicit node lists (unit tests and crafted scenarios),
//! * uniformly random kills (the paper's §5 methodology: "we randomly
//!   disable some nodes from the collaboration and create the holes"),
//! * spatial regions, including a moving [`Jammer`] disk.

use serde::{Deserialize, Serialize};
use std::fmt;

use wsn_geometry::{Disk, Point2, Vec2};

use crate::node::NodeId;
use crate::Round;

/// One fault-injection action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Disable exactly these nodes (already-disabled ids are ignored).
    KillNodes(Vec<NodeId>),
    /// Disable `count` enabled nodes chosen uniformly at random.
    KillRandomEnabled {
        /// How many enabled nodes to disable (saturates at the number of
        /// enabled nodes).
        count: usize,
    },
    /// Disable every enabled node inside the disk (jamming strike).
    KillRegion(Disk),
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEvent::KillNodes(ids) => write!(f, "kill {} listed nodes", ids.len()),
            FaultEvent::KillRandomEnabled { count } => write!(f, "kill {count} random nodes"),
            FaultEvent::KillRegion(d) => write!(f, "kill region {d}"),
        }
    }
}

/// A fault event scheduled for a specific round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledFault {
    /// Round at which the event fires (before the protocol round runs).
    pub round: Round,
    /// The action.
    pub event: FaultEvent,
}

/// A chronological schedule of fault events.
///
/// ```
/// use wsn_simcore::fault::{FaultEvent, FaultPlan};
///
/// let plan = FaultPlan::new()
///     .at(0, FaultEvent::KillRandomEnabled { count: 10 })
///     .at(5, FaultEvent::KillRandomEnabled { count: 3 });
/// assert_eq!(plan.events_at(5).count(), 1);
/// assert_eq!(plan.last_round(), Some(5));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds an event at `round` (builder style; events may be added in
    /// any order).
    #[must_use]
    pub fn at(mut self, round: Round, event: FaultEvent) -> FaultPlan {
        self.events.push(ScheduledFault { round, event });
        self.events.sort_by_key(|e| e.round);
        self
    }

    /// Events scheduled for exactly `round`, in insertion order.
    pub fn events_at(&self, round: Round) -> impl Iterator<Item = &FaultEvent> {
        self.events
            .iter()
            .filter(move |e| e.round == round)
            .map(|e| &e.event)
    }

    /// All scheduled events.
    pub fn events(&self) -> &[ScheduledFault] {
        &self.events
    }

    /// The last round with a scheduled event, or `None` for an empty plan.
    pub fn last_round(&self) -> Option<Round> {
        self.events.last().map(|e| e.round)
    }

    /// `true` when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A jammer moving in a straight line, disabling everything in its disk.
///
/// Models the attack of Xu et al. (the paper's reference \[8\]): the
/// jammer's footprint at round `t` is a disk of fixed radius centered at
/// `start + t·velocity`. [`Jammer::plan`] expands the trajectory into a
/// [`FaultPlan`] with one [`FaultEvent::KillRegion`] per round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Jammer {
    /// Center position at round 0.
    pub start: Point2,
    /// Displacement per round, meters.
    pub velocity: Vec2,
    /// Jamming radius, meters.
    pub radius: f64,
}

impl Jammer {
    /// Center position at `round`.
    pub fn position_at(&self, round: Round) -> Point2 {
        self.start + self.velocity * round as f64
    }

    /// Jamming footprint at `round`.
    ///
    /// # Errors
    ///
    /// Propagates [`wsn_geometry::GeometryError`] when the jammer radius
    /// or trajectory is numerically invalid.
    pub fn disk_at(&self, round: Round) -> wsn_geometry::Result<Disk> {
        Disk::new(self.position_at(round), self.radius)
    }

    /// Expands rounds `start_round..end_round` into a fault plan.
    ///
    /// # Errors
    ///
    /// Propagates geometry errors from an invalid radius/trajectory.
    pub fn plan(&self, start_round: Round, end_round: Round) -> wsn_geometry::Result<FaultPlan> {
        let mut plan = FaultPlan::new();
        for r in start_round..end_round {
            plan = plan.at(r, FaultEvent::KillRegion(self.disk_at(r)?));
        }
        Ok(plan)
    }
}

impl fmt::Display for Jammer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "jammer(start={}, v={}, r={:.2})",
            self.start, self.velocity, self.radius
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_orders_and_filters_by_round() {
        let plan = FaultPlan::new()
            .at(7, FaultEvent::KillRandomEnabled { count: 1 })
            .at(2, FaultEvent::KillRandomEnabled { count: 2 })
            .at(7, FaultEvent::KillNodes(vec![NodeId::new(1)]));
        assert_eq!(plan.events().len(), 3);
        assert_eq!(plan.events()[0].round, 2);
        assert_eq!(plan.events_at(7).count(), 2);
        assert_eq!(plan.events_at(3).count(), 0);
        assert_eq!(plan.last_round(), Some(7));
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
        assert_eq!(FaultPlan::new().last_round(), None);
    }

    #[test]
    fn jammer_moves_linearly() {
        let j = Jammer {
            start: Point2::new(0.0, 0.0),
            velocity: Vec2::new(2.0, 1.0),
            radius: 5.0,
        };
        assert_eq!(j.position_at(0), Point2::new(0.0, 0.0));
        assert_eq!(j.position_at(3), Point2::new(6.0, 3.0));
        let d = j.disk_at(2).unwrap();
        assert_eq!(d.center(), Point2::new(4.0, 2.0));
        assert_eq!(d.radius(), 5.0);
    }

    #[test]
    fn jammer_plan_one_event_per_round() {
        let j = Jammer {
            start: Point2::ORIGIN,
            velocity: Vec2::new(1.0, 0.0),
            radius: 2.0,
        };
        let plan = j.plan(3, 8).unwrap();
        assert_eq!(plan.events().len(), 5);
        assert_eq!(plan.events()[0].round, 3);
        assert_eq!(plan.last_round(), Some(7));
        match &plan.events()[0].event {
            FaultEvent::KillRegion(d) => assert_eq!(d.center(), Point2::new(3.0, 0.0)),
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn invalid_jammer_radius_is_reported() {
        let j = Jammer {
            start: Point2::ORIGIN,
            velocity: Vec2::ZERO,
            radius: -1.0,
        };
        assert!(j.disk_at(0).is_err());
        assert!(j.plan(0, 2).is_err());
    }

    #[test]
    fn displays_nonempty() {
        assert!(!FaultEvent::KillRandomEnabled { count: 3 }
            .to_string()
            .is_empty());
        assert!(!FaultEvent::KillNodes(vec![]).to_string().is_empty());
        let j = Jammer {
            start: Point2::ORIGIN,
            velocity: Vec2::ZERO,
            radius: 1.0,
        };
        assert!(!j.to_string().is_empty());
        assert!(!FaultEvent::KillRegion(j.disk_at(0).unwrap())
            .to_string()
            .is_empty());
    }
}
