//! The Monte-Carlo sweep behind Figures 6, 7 and 8.
//!
//! Trials drive the schemes through the uniform
//! [`wsn_coverage::ReplacementScheme`] API (the trait path is proven
//! byte-identical to the old direct drivers by the golden sweep
//! fixture).

use serde::{Deserialize, Serialize};

use wsn_baselines::Ar;
use wsn_coverage::scheme::{DriveMode, ReplacementScheme};
use wsn_coverage::{Recovery, Sr, SrConfig, SrSc};
use wsn_grid::{deploy, GridNetwork, GridSystem};
use wsn_simcore::{Metrics, SimRng};
use wsn_stats::JsonValue;

/// Sweep parameters. The defaults are the paper's §5 setup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Grid columns (`n`).
    pub cols: u16,
    /// Grid rows (`m`).
    pub rows: u16,
    /// Node communication range `R` in meters (`r = R/√5`).
    pub comm_range: f64,
    /// Target spare counts `N` (the x-axis of Figures 6–8).
    pub targets: Vec<usize>,
    /// Monte-Carlo trials (seeds) per target.
    pub trials: u64,
    /// Base seed; trial `t` of target index `i` uses
    /// `base_seed + i·10_000 + t`.
    pub base_seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            cols: 16,
            rows: 16,
            comm_range: 10.0,
            targets: vec![
                10, 25, 55, 100, 150, 200, 300, 400, 500, 600, 700, 800, 900, 1000,
            ],
            trials: 10,
            base_seed: 20_080_617, // ICDCS 2008 began June 17.
        }
    }
}

impl SweepConfig {
    /// A smaller, faster sweep for smoke tests and Criterion benches.
    pub fn quick() -> SweepConfig {
        SweepConfig {
            targets: vec![10, 55, 200, 1000],
            trials: 3,
            ..SweepConfig::default()
        }
    }
}

/// One (target, seed) trial: both schemes run on byte-identical
/// deployments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialResult {
    /// The swept spare target `N`.
    pub n_target: usize,
    /// Trial seed.
    pub seed: u64,
    /// Holes present after deployment.
    pub holes: usize,
    /// Actual spares after deployment (`N + holes` by construction).
    pub spares: usize,
    /// SR cost counters.
    pub sr: Metrics,
    /// SR reached complete coverage.
    pub sr_covered: bool,
    /// AR cost counters.
    pub ar: Metrics,
    /// AR reached complete coverage.
    pub ar_covered: bool,
}

/// Runs one single-hole replacement with exactly `n` spares placed
/// uniformly over the non-hole cells, returning the hop count of the
/// converged process — a direct sample from Theorem 2's distribution
/// (used by the `figpmf` extension figure and the validation tests).
pub fn simulate_single_replacement(cols: u16, rows: u16, n: usize, seed: u64) -> u64 {
    let sys = GridSystem::new(cols, rows, 4.4721).expect("valid dims");
    let mut rng = SimRng::seed_from_u64(seed);
    let hole = sys.coord_of(rng.range_usize(sys.cell_count()));
    let mut pos = deploy::with_holes(&sys, &[hole], 1, &mut rng);
    let occupied: Vec<_> = sys.iter_coords().filter(|c| *c != hole).collect();
    for _ in 0..n {
        let cell = occupied[rng.range_usize(occupied.len())];
        let rect = sys.cell_rect(cell).expect("in bounds");
        pos.push(wsn_geometry::sample::point_in_rect(
            &rect,
            rng.uniform_f64(),
            rng.uniform_f64(),
        ));
    }
    let net = GridNetwork::new(sys, &pos);
    let mut rec = Recovery::new(net, SrConfig::default().with_seed(seed)).expect("valid topology");
    let report = rec.run();
    assert!(report.fully_covered, "a spare exists, so SR converges");
    report.processes[0].hops
}

/// Like a plain sweep trial but additionally runs the SR-SC shortcut variant
/// on the same deployment (used by the `figsc` extension figure).
/// Returns `(trial, shortcut_metrics)`.
pub fn run_trial_with_shortcut(
    cfg: &SweepConfig,
    n_target: usize,
    seed: u64,
) -> (TrialResult, Metrics) {
    let trial = run_trial(cfg, n_target, seed);
    let sys = GridSystem::for_comm_range(cfg.cols, cfg.rows, cfg.comm_range)
        .expect("sweep dimensions are valid");
    let mut rng = SimRng::seed_from_u64(seed);
    let positions = deploy::uniform(&sys, n_target + sys.cell_count(), &mut rng);
    let mut net = GridNetwork::new(sys, &positions);
    let report = SrSc::new()
        .run(&mut net, seed, DriveMode::Classic)
        .expect("16x16-class grids have a single cycle");
    (trial, report.metrics)
}

fn run_trial(cfg: &SweepConfig, n_target: usize, seed: u64) -> TrialResult {
    let sys = GridSystem::for_comm_range(cfg.cols, cfg.rows, cfg.comm_range)
        .expect("sweep dimensions are valid");
    let mut rng = SimRng::seed_from_u64(seed);
    // The paper: "(N + m x n) enabled nodes", uniform.
    let enabled = n_target + sys.cell_count();
    let positions = deploy::uniform(&sys, enabled, &mut rng);
    let mut net_sr = GridNetwork::new(sys, &positions);
    let mut net_ar = net_sr.clone();
    let stats = net_sr.stats();

    // Both schemes run through the uniform trait API on byte-identical
    // deployments.
    let sr_report = Sr::new()
        .run(&mut net_sr, seed, DriveMode::Classic)
        .expect("16x16-class grids always have a topology");
    let ar_report = Ar::new()
        .run(&mut net_ar, seed, DriveMode::Classic)
        .expect("AR runs on any grid");

    TrialResult {
        n_target,
        seed,
        holes: stats.vacant,
        spares: stats.spares,
        sr: sr_report.metrics,
        sr_covered: sr_report.fully_covered,
        ar: ar_report.metrics,
        ar_covered: ar_report.fully_covered,
    }
}

/// Runs the full sweep, parallelized across (target, seed) pairs with
/// scoped threads. Results are returned sorted by `(n_target, seed)` so
/// the output is independent of scheduling.
pub fn run_sweep(cfg: &SweepConfig) -> Vec<TrialResult> {
    let mut jobs: Vec<(usize, u64)> = Vec::new();
    for (i, &t) in cfg.targets.iter().enumerate() {
        for trial in 0..cfg.trials {
            jobs.push((t, cfg.base_seed + i as u64 * 10_000 + trial));
        }
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(jobs.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results = std::sync::Mutex::new(Vec::with_capacity(jobs.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&(t, seed)) = jobs.get(k) else { break };
                let r = run_trial(cfg, t, seed);
                results.lock().expect("no poisoned trials").push(r);
            });
        }
    });
    let mut out = results.into_inner().expect("scope joined");
    out.sort_by_key(|r| (r.n_target, r.seed));
    out
}

fn metrics_json(m: &Metrics) -> JsonValue {
    JsonValue::obj([
        ("moves", JsonValue::from(m.moves)),
        ("distance", JsonValue::from(m.distance)),
        (
            "processes_initiated",
            JsonValue::from(m.processes_initiated),
        ),
        (
            "processes_converged",
            JsonValue::from(m.processes_converged),
        ),
        ("processes_failed", JsonValue::from(m.processes_failed)),
        (
            "success_rate_percent",
            JsonValue::from(m.success_rate_percent()),
        ),
        ("messages", JsonValue::from(m.messages)),
        ("energy", JsonValue::from(m.energy)),
        ("rounds", JsonValue::from(m.rounds)),
        ("cells_scanned", JsonValue::from(m.cells_scanned)),
    ])
}

/// Serializes a completed sweep as machine-readable JSON — the artifact
/// `results/sweep_<cols>x<rows>.json` that lets perf trajectories be
/// diffed across revisions instead of eyeballing ASCII figures. Trial
/// order is the deterministic `(n_target, seed)` order of
/// [`run_sweep`], so identical code produces identical files.
pub fn sweep_to_json(cfg: &SweepConfig, results: &[TrialResult]) -> JsonValue {
    let targets: Vec<JsonValue> = cfg.targets.iter().map(|&t| JsonValue::from(t)).collect();
    let trials: Vec<JsonValue> = results
        .iter()
        .map(|r| {
            JsonValue::obj([
                ("n_target", JsonValue::from(r.n_target)),
                ("seed", JsonValue::from(r.seed)),
                ("holes", JsonValue::from(r.holes)),
                ("spares", JsonValue::from(r.spares)),
                ("sr", metrics_json(&r.sr)),
                ("sr_covered", JsonValue::from(r.sr_covered)),
                ("ar", metrics_json(&r.ar)),
                ("ar_covered", JsonValue::from(r.ar_covered)),
            ])
        })
        .collect();
    JsonValue::obj([
        (
            "config",
            JsonValue::obj([
                ("cols", JsonValue::from(usize::from(cfg.cols))),
                ("rows", JsonValue::from(usize::from(cfg.rows))),
                ("comm_range", JsonValue::from(cfg.comm_range)),
                ("targets", JsonValue::Arr(targets)),
                ("trials", JsonValue::from(cfg.trials)),
                ("base_seed", JsonValue::from(cfg.base_seed)),
            ]),
        ),
        ("trials", JsonValue::Arr(trials)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_invariant_spares_equal_target_plus_holes() {
        let cfg = SweepConfig {
            targets: vec![10, 200],
            trials: 3,
            ..SweepConfig::default()
        };
        for r in run_sweep(&cfg) {
            assert_eq!(
                r.spares,
                r.n_target + r.holes,
                "spares = N + holes by construction"
            );
        }
    }

    #[test]
    fn sr_always_succeeds_and_beats_ar_on_processes() {
        // The paper's headline claims, at sweep scale: SR covers fully
        // with 100% process success, with at most half the processes AR
        // initiates (aggregate).
        let cfg = SweepConfig {
            targets: vec![55, 300],
            trials: 4,
            ..SweepConfig::default()
        };
        let results = run_sweep(&cfg);
        let mut sr_proc = 0u64;
        let mut ar_proc = 0u64;
        for r in &results {
            assert!(r.sr_covered, "SR must fully cover (N={})", r.n_target);
            assert_eq!(r.sr.success_rate_percent(), 100.0);
            sr_proc += r.sr.processes_initiated;
            ar_proc += r.ar.processes_initiated;
        }
        assert!(
            2 * sr_proc <= ar_proc + results.len() as u64,
            "fewer than ~50% processes in SR: sr={sr_proc} ar={ar_proc}"
        );
    }

    #[test]
    fn sweep_is_deterministic_and_sorted() {
        let cfg = SweepConfig {
            targets: vec![100],
            trials: 4,
            ..SweepConfig::default()
        };
        let a = run_sweep(&cfg);
        let b = run_sweep(&cfg);
        assert_eq!(a, b);
        assert!(a
            .windows(2)
            .all(|w| (w[0].n_target, w[0].seed) < (w[1].n_target, w[1].seed)));
    }

    #[test]
    fn sweep_json_is_deterministic_and_well_formed() {
        let cfg = SweepConfig {
            targets: vec![10],
            trials: 2,
            ..SweepConfig::default()
        };
        let results = run_sweep(&cfg);
        let a = sweep_to_json(&cfg, &results).to_string();
        let b = sweep_to_json(&cfg, &results).to_string();
        assert_eq!(a, b);
        assert!(a.starts_with('{') && a.ends_with('}'));
        assert!(a.contains("\"config\""));
        assert!(a.contains("\"cols\":16"));
        assert!(a.contains("\"n_target\":10"));
        assert!(a.contains("\"cells_scanned\""));
        // One trial object per (target, seed) pair.
        assert_eq!(a.matches("\"seed\":").count(), 2);
    }

    #[test]
    fn quick_config_is_small() {
        let q = SweepConfig::quick();
        assert!(q.targets.len() <= 6);
        assert!(q.trials <= 5);
        assert_eq!(q.cols, 16);
    }
}
