//! Record/replay tooling over the campaign matrix.
//!
//! ```text
//! cargo run -p wsn-bench --bin replay --release -- record sr --grid 8x8 --n 10 --trial 0
//! cargo run -p wsn-bench --bin replay --release -- diff a.trace b.trace
//! cargo run -p wsn-bench --bin replay --release -- verify a.trace
//! cargo run -p wsn-bench --bin replay --release -- shrink a.trace
//! cargo run -p wsn-bench --bin replay --release -- smoke
//! cargo run -p wsn-bench --bin replay --release -- bench
//! ```
//!
//! * `record` re-executes one campaign coordinate traced and saves a
//!   `replay_<coord>.trace` artifact (`--plan` attaches a fault
//!   schedule in `round:kill-nodes:1,2` text form, `--drive` picks the
//!   driver, `--scenario H:P` records a conformance scenario instead of
//!   a matrix trial).
//! * `diff` compares two artifacts event-by-event and prints the first
//!   divergent record with context; exit code 1 on divergence.
//! * `verify` re-executes an artifact's spec and diffs the fresh trace
//!   against the recorded one (the golden-fixture check).
//! * `shrink` delta-debugs an artifact's fault schedule against its
//!   recorded baseline until the divergence is 1-minimal, writing
//!   `<artifact>.shrunk.txt`.
//! * `smoke` is the CI entry point: records the planted-bug scheme
//!   against real SR on an 8×8 schedule, checks the diff pinpoints the
//!   corruption, shrinks to the known 1-batch/1-victim minimum, and
//!   round-trips the artifact — exit 0 only if every step holds.
//! * `bench` times record/replay overhead (untraced run vs traced run
//!   vs codec round-trip) and writes `BENCH_replay.json` in the
//!   criterion stand-in min/mean/max shape.
//!
//! Artifacts land in `results/` at the workspace root (or
//! `$WSN_RESULTS_DIR`).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use wsn_bench::replay::{
    self, fault_plan_from_str, fault_plan_to_string, record, shrink_between, Recording,
    ReplayArtifact, ReplaySpec, PLANTED_SCHEME_ID,
};
use wsn_coverage::scheme::DriveMode;
use wsn_simcore::replay::diff_logs;
use wsn_simcore::FaultEvent;
use wsn_stats::JsonValue;

fn out_dir() -> PathBuf {
    std::env::var_os("WSN_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Consumes `--flag value` / `--flag=value` from `args`.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        return Ok(Some(v));
    }
    let prefix = format!("{flag}=");
    if let Some(i) = args.iter().position(|a| a.starts_with(&prefix)) {
        return Ok(Some(args.remove(i)[prefix.len()..].to_owned()));
    }
    Ok(None)
}

fn parse_grid(s: &str) -> Result<(u16, u16), String> {
    let (c, r) = s
        .split_once(['x', 'X'])
        .ok_or_else(|| format!("bad grid {s:?}, expected COLSxROWS"))?;
    Ok((
        c.parse().map_err(|_| format!("bad grid cols {c:?}"))?,
        r.parse().map_err(|_| format!("bad grid rows {r:?}"))?,
    ))
}

fn build_spec(mut args: Vec<String>) -> Result<(ReplaySpec, Option<PathBuf>), String> {
    let grid = match take_flag(&mut args, "--grid")? {
        Some(g) => parse_grid(&g)?,
        None => (8, 8),
    };
    let n: usize = match take_flag(&mut args, "--n")? {
        Some(v) => v.parse().map_err(|_| format!("bad --n {v:?}"))?,
        None => 10,
    };
    let trial: u64 = match take_flag(&mut args, "--trial")? {
        Some(v) => v.parse().map_err(|_| format!("bad --trial {v:?}"))?,
        None => 0,
    };
    let scenario = take_flag(&mut args, "--scenario")?;
    let seed: Option<u64> = take_flag(&mut args, "--seed")?
        .map(|v| v.parse().map_err(|_| format!("bad --seed {v:?}")))
        .transpose()?;
    let plan = match take_flag(&mut args, "--plan")? {
        Some(text) => fault_plan_from_str(&text).map_err(|e| e.to_string())?,
        None => wsn_simcore::FaultPlan::new(),
    };
    let drive = match take_flag(&mut args, "--drive")?.as_deref() {
        None | Some("classic") => DriveMode::Classic,
        Some("change-driven") => DriveMode::ChangeDriven,
        Some(other) => return Err(format!("bad --drive {other:?}")),
    };
    let out = take_flag(&mut args, "--out")?.map(PathBuf::from);
    let scheme = match args.iter().find(|a| !a.starts_with("--")) {
        Some(s) => s.clone(),
        None => return Err("record needs a scheme id".into()),
    };
    let mut spec = match scenario {
        Some(s) => {
            let (h, p) = s
                .split_once(':')
                .ok_or_else(|| format!("bad --scenario {s:?}, expected HOLES:PER_CELL"))?;
            ReplaySpec::scenario(
                &scheme,
                grid,
                h.parse().map_err(|_| format!("bad holes {h:?}"))?,
                p.parse().map_err(|_| format!("bad per_cell {p:?}"))?,
                seed.unwrap_or(42),
            )
        }
        None => {
            let mut m = ReplaySpec::matrix(&scheme, grid, n, trial);
            if let Some(seed) = seed {
                m.master_seed = seed;
            }
            m
        }
    };
    spec = spec.with_drive(drive).with_plan(plan);
    Ok((spec, out))
}

fn cmd_record(args: Vec<String>) -> Result<(), String> {
    let (spec, out) = build_spec(args)?;
    let rec = record(&spec).map_err(|e| e.to_string())?;
    let artifact = ReplayArtifact::from_recording(&rec, None);
    let path = out.unwrap_or_else(|| out_dir().join(artifact.file_name()));
    artifact.save(&path).map_err(|e| e.to_string())?;
    println!(
        "recorded {} (stream seed {}): {} events, {} moves, {} messages -> {}",
        spec.slug(),
        spec.stream_seed(),
        rec.trace.len(),
        rec.report.metrics.moves,
        rec.report.metrics.messages,
        path.display()
    );
    Ok(())
}

fn cmd_diff(a: &Path, b: &Path) -> Result<bool, String> {
    let left = ReplayArtifact::load(a).map_err(|e| format!("{}: {e}", a.display()))?;
    let right = ReplayArtifact::load(b).map_err(|e| format!("{}: {e}", b.display()))?;
    let diff = diff_logs(&left.trace, &right.trace);
    println!("{diff}");
    Ok(diff.is_clean())
}

fn cmd_verify(path: &Path) -> Result<bool, String> {
    let artifact = ReplayArtifact::load(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let diff = artifact.verify().map_err(|e| e.to_string())?;
    println!("{}: re-executed {}", path.display(), artifact.spec.slug());
    println!("{diff}");
    Ok(diff.is_clean())
}

fn cmd_shrink(path: &Path) -> Result<bool, String> {
    let artifact = ReplayArtifact::load(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let Some((baseline, baseline_drive)) = artifact.baseline.clone() else {
        return Err(format!(
            "{}: artifact records no baseline to diff against; re-record with one",
            path.display()
        ));
    };
    let left = artifact.spec.clone();
    let right = left
        .clone()
        .with_scheme(&baseline)
        .with_drive(baseline_drive);
    let report = shrink_between(&left, &right).map_err(|e| e.to_string())?;
    if !report.reproduced {
        println!("divergence does not reproduce from the recorded schedule; nothing to shrink");
        return Ok(false);
    }
    let text = fault_plan_to_string(&report.plan);
    let out = path.with_extension("shrunk.txt");
    std::fs::write(&out, format!("{text}\n")).map_err(|e| e.to_string())?;
    println!(
        "minimal failing schedule: {} of {} batches kept after {} oracle runs",
        report.plan.events().len(),
        report.initial_batches,
        report.oracle_calls
    );
    println!("  {}", if text.is_empty() { "<empty>" } else { &text });
    println!("  -> {}", out.display());
    Ok(true)
}

/// The CI smoke: prove the record -> diff -> shrink loop end-to-end on
/// an 8×8 schedule with the planted-bug scheme.
fn cmd_smoke(dir: &Path) -> Result<(), String> {
    let plan = wsn_simcore::FaultPlan::new()
        .at(1, FaultEvent::KillRandomEnabled { count: 1 })
        .at(3, FaultEvent::KillNodes(node_ids(&[5, 9])))
        .at(4, FaultEvent::KillNodes(node_ids(&[12])));
    let planted = ReplaySpec::matrix(PLANTED_SCHEME_ID, (8, 8), 10, 0).with_plan(plan.clone());
    let real = planted.clone().with_scheme("sr");

    // 1. Record both sides; the planted bug must diverge.
    let left = record(&planted).map_err(|e| e.to_string())?;
    let right = record(&real).map_err(|e| e.to_string())?;
    let diff = diff_logs(&left.trace, &right.trace);
    if diff.is_clean() {
        return Err("planted bug did not diverge from real SR".into());
    }
    println!(
        "planted divergence at record #{} (common prefix {})",
        diff.divergence.as_ref().map_or(0, |d| d.index),
        diff.common_prefix
    );

    // 2. Artifacts round-trip through the binary container.
    let artifact = ReplayArtifact::from_recording(&left, Some(("sr".into(), DriveMode::Classic)));
    let path = dir.join(artifact.file_name());
    artifact.save(&path).map_err(|e| e.to_string())?;
    let loaded = ReplayArtifact::load(&path).map_err(|e| e.to_string())?;
    if loaded != artifact {
        return Err(format!(
            "artifact round-trip mismatch for {}",
            path.display()
        ));
    }
    // Re-execution from the artifact alone reproduces the trace.
    let replayed = loaded.verify().map_err(|e| e.to_string())?;
    if !replayed.is_clean() {
        return Err("artifact did not replay to an identical trace".into());
    }
    println!("artifact round-trips and replays clean: {}", path.display());

    // 3. The shrinker lands on the hand-computed minimum: one
    //    kill-nodes batch with one victim.
    let report = shrink_between(&planted, &real).map_err(|e| e.to_string())?;
    if !report.reproduced {
        return Err("shrinker failed to reproduce the divergence".into());
    }
    let events = report.plan.events();
    let minimal = events.len() == 1
        && matches!(&events[0].event, FaultEvent::KillNodes(ids) if ids.len() == 1);
    if !minimal {
        return Err(format!(
            "expected a 1-batch/1-victim minimum, got {:?}",
            fault_plan_to_string(&report.plan)
        ));
    }
    // Deterministic: a second shrink takes the identical path.
    let again = shrink_between(&planted, &real).map_err(|e| e.to_string())?;
    if again.plan != report.plan || again.oracle_calls != report.oracle_calls {
        return Err("shrink is not deterministic across reruns".into());
    }
    let text = fault_plan_to_string(&report.plan);
    std::fs::write(path.with_extension("shrunk.txt"), format!("{text}\n"))
        .map_err(|e| e.to_string())?;
    println!(
        "shrunk {} -> {} batches in {} oracle runs: {}",
        report.initial_batches,
        events.len(),
        report.oracle_calls,
        text
    );
    println!("replay smoke OK");
    Ok(())
}

fn node_ids(raw: &[u32]) -> Vec<wsn_simcore::NodeId> {
    raw.iter().copied().map(wsn_simcore::NodeId::new).collect()
}

/// Times one closure `samples` times and returns (min, mean, max) in
/// nanoseconds — the criterion stand-in shape. A few untimed warmup
/// iterations stabilize caches first so `min_ns` is comparable across
/// machines and runs (the perf gate diffs it at 25%).
fn time_ns(samples: usize, mut f: impl FnMut()) -> (f64, f64, f64) {
    for _ in 0..3 {
        f();
    }
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_nanos() as f64);
    }
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let max = times.iter().copied().fold(0.0, f64::max);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    (min, mean, max)
}

fn bench_entry(name: &str, samples: usize, (min, mean, max): (f64, f64, f64)) -> JsonValue {
    JsonValue::obj([
        ("name", JsonValue::from(name)),
        ("samples", JsonValue::from(samples as u64)),
        ("min_ns", JsonValue::from(min)),
        ("mean_ns", JsonValue::from(mean)),
        ("max_ns", JsonValue::from(max)),
    ])
}

/// Measures trace record/replay overhead and writes `BENCH_replay.json`.
fn cmd_bench(dir: &Path) -> Result<(), String> {
    const SAMPLES: usize = 40;
    let spec = ReplaySpec::matrix("sr", (16, 16), 100, 0);
    let run_untraced = || {
        let scheme = replay::scheme_with_plan("sr", &spec.fault_plan).expect("sr is replayable");
        let mut net = spec.build_network();
        scheme
            .run(&mut net, spec.stream_seed(), spec.drive)
            .expect("sr runs the bench spec");
    };
    let run_traced = || -> Recording { record(&spec).expect("sr records the bench spec") };

    let untraced = time_ns(SAMPLES, run_untraced);
    let traced = time_ns(SAMPLES, || {
        run_traced();
    });
    let rec = run_traced();
    let artifact = ReplayArtifact::from_recording(&rec, None);
    let bytes = artifact.to_bytes();
    let codec = time_ns(SAMPLES, || {
        let round = ReplayArtifact::from_bytes(&artifact.to_bytes()).expect("self round-trip");
        assert_eq!(round.trace.len(), rec.trace.len());
    });
    let replayed = time_ns(SAMPLES, || {
        assert!(artifact.verify().expect("bench spec replays").is_clean());
    });

    let overhead_percent = if untraced.1 > 0.0 {
        (traced.1 / untraced.1 - 1.0) * 100.0
    } else {
        0.0
    };
    let json = JsonValue::obj([
        ("schema", JsonValue::from("wsn-bench-replay/1")),
        ("spec", JsonValue::from(spec.slug())),
        ("trace_events", JsonValue::from(rec.trace.len() as u64)),
        ("artifact_bytes", JsonValue::from(bytes.len() as u64)),
        ("record_overhead_percent", JsonValue::from(overhead_percent)),
        (
            "benchmarks",
            JsonValue::Arr(vec![
                bench_entry("run_untraced_sr_16x16", SAMPLES, untraced),
                bench_entry("run_traced_sr_16x16", SAMPLES, traced),
                bench_entry("artifact_codec_round_trip", SAMPLES, codec),
                bench_entry("replay_and_diff", SAMPLES, replayed),
            ]),
        ),
    ]);
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let path = dir.join("BENCH_replay.json");
    std::fs::write(&path, json.to_file_string()).map_err(|e| e.to_string())?;
    println!(
        "traced run overhead {overhead_percent:.1}% over {} events -> {}",
        rec.trace.len(),
        path.display()
    );
    Ok(())
}

const USAGE: &str = "usage: replay <record|diff|verify|shrink|smoke|bench> [args]
  record <scheme> [--grid CxR] [--n N] [--trial T] [--seed S] [--plan TEXT]
                  [--drive classic|change-driven] [--scenario H:P] [--out FILE]
  diff <a.trace> <b.trace>
  verify <a.trace>
  shrink <a.trace>
  smoke
  bench";

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let cmd = args.remove(0);
    let outcome: Result<bool, String> = match cmd.as_str() {
        "record" => cmd_record(args).map(|()| true),
        "diff" => match args.as_slice() {
            [a, b] => cmd_diff(Path::new(a), Path::new(b)),
            _ => Err("diff needs exactly two artifact paths".into()),
        },
        "verify" => match args.as_slice() {
            [a] => cmd_verify(Path::new(a)),
            _ => Err("verify needs exactly one artifact path".into()),
        },
        "shrink" => match args.as_slice() {
            [a] => cmd_shrink(Path::new(a)),
            _ => Err("shrink needs exactly one artifact path".into()),
        },
        "smoke" => {
            let dir = out_dir();
            std::fs::create_dir_all(&dir)
                .map_err(|e| e.to_string())
                .and_then(|()| cmd_smoke(&dir))
                .map(|()| true)
        }
        "bench" => cmd_bench(&out_dir()).map(|()| true),
        other => {
            eprintln!("unknown command {other:?}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
