//! The perf ledger CLI.
//!
//! ```text
//! cargo run -p wsn-bench --bin perf --release -- run [--smoke] [--out DIR]
//! cargo run -p wsn-bench --bin perf --release -- compare [--baselines DIR]
//!     [--results DIR] [--threshold PCT]
//! ```
//!
//! * `run` executes the core (word kernel + arena), campaign
//!   (end-to-end throughput), steady-state availability and
//!   event-engine benchmarks and writes `BENCH_core.json`,
//!   `BENCH_campaign.json`, `BENCH_avail.json` and `BENCH_event.json`
//!   into `results/` (or `--out`/`$WSN_RESULTS_DIR`).
//!   `--smoke` is the CI profile: seconds, 64×64 only. The full run also
//!   asserts the kernel acceptance ratio (word fold ≥ 5× the `BTreeSet`
//!   fold on the 256×256 mass-failure journal).
//! * `compare` is the regression gate: every `BENCH_*.json` present in
//!   both the baseline directory (default `baselines/`) and the fresh
//!   results directory (default `results/`) is matched benchmark by
//!   benchmark; exit code 1 when any `min_ns` regressed by more than
//!   the threshold (default 25%). To refresh the checked-in ledger:
//!   `perf run --out baselines` plus `replay bench` with
//!   `WSN_RESULTS_DIR=baselines`.

use std::path::PathBuf;
use std::process::ExitCode;

use wsn_bench::perf::{
    bench_avail, bench_campaign, bench_core, bench_event, compare_dirs, DEFAULT_THRESHOLD_PERCENT,
};
use wsn_simcore::shutdown;
use wsn_stats::JsonValue;

fn out_dir() -> PathBuf {
    std::env::var_os("WSN_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Consumes `--flag value` / `--flag=value` from `args`.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        return Ok(Some(v));
    }
    let prefix = format!("{flag}=");
    if let Some(i) = args.iter().position(|a| a.starts_with(&prefix)) {
        return Ok(Some(args.remove(i)[prefix.len()..].to_owned()));
    }
    Ok(None)
}

/// Consumes a bare `--flag` switch from `args`.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn cmd_run(mut args: Vec<String>) -> Result<(), String> {
    let smoke = take_switch(&mut args, "--smoke");
    let dir = match take_flag(&mut args, "--out")? {
        Some(d) => PathBuf::from(d),
        None => out_dir(),
    };
    if let Some(extra) = args.first() {
        return Err(format!("unexpected argument {extra:?}"));
    }
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;

    let core = bench_core(smoke);
    let speedup = core
        .get("kernel_speedup_min")
        .and_then(JsonValue::as_f64)
        .expect("core ledger carries the speedup");
    let core_path = dir.join("BENCH_core.json");
    std::fs::write(&core_path, core.to_file_string()).map_err(|e| e.to_string())?;
    println!(
        "word kernel {speedup:.1}x over BTreeSet journal fold -> {}",
        core_path.display()
    );
    if !smoke && speedup < 5.0 {
        return Err(format!(
            "kernel acceptance failed: word fold only {speedup:.1}x over the BTreeSet fold \
             (need >= 5x on the 256x256 mass-failure journal)"
        ));
    }

    let write_throughput = |file: &str, doc: &JsonValue| -> Result<(), String> {
        let path = dir.join(file);
        std::fs::write(&path, doc.to_file_string()).map_err(|e| e.to_string())?;
        for entry in doc
            .get("benchmarks")
            .and_then(JsonValue::as_arr)
            .unwrap_or_default()
        {
            let name = entry.get("name").and_then(JsonValue::as_str).unwrap_or("?");
            let tps = entry
                .get("trials_per_sec")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0);
            println!("{name}: {tps:.2} trials/sec");
        }
        println!("-> {}", path.display());
        Ok(())
    };
    // Each ledger is flushed as soon as it is measured, so a
    // SIGINT/SIGTERM between sections keeps everything already written;
    // the sections themselves are seconds, not minutes.
    type Section = fn(bool) -> JsonValue;
    let sections: [(&str, Section); 3] = [
        ("BENCH_campaign.json", bench_campaign),
        ("BENCH_avail.json", bench_avail),
        ("BENCH_event.json", bench_event),
    ];
    for (file, section) in sections {
        if shutdown::requested() {
            return Err(format!(
                "interrupted by signal; ledgers before {file} are written and complete"
            ));
        }
        write_throughput(file, &section(smoke))?;
    }
    Ok(())
}

fn cmd_compare(mut args: Vec<String>) -> Result<bool, String> {
    let baselines = take_flag(&mut args, "--baselines")?
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("baselines"));
    let results = take_flag(&mut args, "--results")?
        .map(PathBuf::from)
        .unwrap_or_else(out_dir);
    let threshold: f64 = match take_flag(&mut args, "--threshold")? {
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad --threshold {v:?}, expected a percentage"))?,
        None => DEFAULT_THRESHOLD_PERCENT,
    };
    if let Some(extra) = args.first() {
        return Err(format!("unexpected argument {extra:?}"));
    }
    let reports = compare_dirs(&baselines, &results, threshold)?;
    let mut ok = true;
    for report in &reports {
        println!("{} (threshold {threshold}%):", report.file);
        for c in &report.comparisons {
            println!("  {c}");
        }
        for name in &report.missing {
            println!("  skipped {name}: not in this run (baseline-only entry)");
        }
        for name in &report.fresh_only {
            println!(
                "  warning {name}: no baseline entry — refresh the checked-in ledger to gate it"
            );
        }
        ok &= report.is_ok();
    }
    if !ok {
        eprintln!("perf compare: regression over {threshold}% detected");
    }
    Ok(ok)
}

const USAGE: &str = "usage: perf <run|compare> [args]
  run     [--smoke] [--out DIR]
  compare [--baselines DIR] [--results DIR] [--threshold PCT]";

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let cmd = args.remove(0);
    shutdown::install_signal_traps();
    let outcome: Result<bool, String> = match cmd.as_str() {
        "run" => cmd_run(args).map(|()| true),
        "compare" => cmd_compare(args),
        other => {
            eprintln!("unknown command {other:?}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
