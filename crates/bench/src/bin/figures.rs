//! Regenerates every evaluation figure of the paper.
//!
//! ```text
//! cargo run -p wsn-bench --bin figures --release               # all figures
//! cargo run -p wsn-bench --bin figures --release -- fig6       # one figure
//! cargo run -p wsn-bench --bin figures --release -- --quick    # reduced sweep
//! cargo run -p wsn-bench --bin figures --release -- --smoke    # CI smoke: tiny grid, seconds
//! cargo run -p wsn-bench --bin figures --release -- --campaign # Figures 6-8 with CI whiskers
//! cargo run -p wsn-bench --bin figures --release -- --campaign --masked # irregular-region axis
//! cargo run -p wsn-bench --bin figures --release -- --avail    # steady-state availability
//! cargo run -p wsn-bench --bin figures --release -- --degraded # latency x loss weather sweep
//! cargo run -p wsn-bench --bin figures --release -- --schemes sr,ar,vf,smart # scheme axis
//! ```
//!
//! `--schemes` takes a comma-separated list of registry ids (see
//! `wsn_baselines::builtins`) and overrides the campaign's scheme axis;
//! it implies `--campaign`. Unknown ids abort with the registered list.
//!
//! ASCII plots go to stdout; `<fig>.txt` and `<fig>.csv` land in
//! `results/` at the workspace root (or `$WSN_RESULTS_DIR`), and every
//! Monte-Carlo sweep additionally writes machine-readable
//! `sweep_<cols>x<rows>.json` so perf/behavior trajectories can be
//! diffed across revisions.
//!
//! `--campaign` swaps the single-grid sweep behind Figures 6–8 for the
//! campaign engine: 30 seeds per matrix cell, streaming statistics, and
//! 95% CI whisker curves on every experimental series, exported as
//! `campaign_<name>.json` + `.csv` (combine with `--quick`/`--smoke`
//! for the reduced matrices).

use std::path::PathBuf;
use std::process::ExitCode;

use wsn_baselines::builtins;
use wsn_bench::campaign::{
    run_campaign_resumable, CampaignCheckpoint, CampaignConfig, CampaignObserver, CampaignResult,
    CampaignRun,
};
use wsn_bench::figures;
use wsn_bench::sweep::{run_sweep, sweep_to_json, SweepConfig};
use wsn_coverage::SchemeId;
use wsn_simcore::shutdown;
use wsn_stats::table::TextTable;

fn out_dir() -> PathBuf {
    std::env::var_os("WSN_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Winds the campaign down at the next trial boundary after
/// SIGINT/SIGTERM.
struct SignalObserver;

impl CampaignObserver for SignalObserver {
    fn cancel_requested(&self) -> bool {
        shutdown::requested()
    }
}

/// Runs a campaign under the process shutdown flag. A signal flushes a
/// resumable checkpoint to `<dir>/<name>.checkpoint.json` instead of
/// discarding the completed trials; a matching checkpoint left by an
/// earlier interrupted run is picked up automatically and removed once
/// the campaign completes.
fn run_campaign_graceful(cfg: &CampaignConfig, dir: &PathBuf) -> Result<CampaignResult, String> {
    let checkpoint_path = dir.join(format!("{}.checkpoint.json", cfg.name));
    let start = match std::fs::read_to_string(&checkpoint_path) {
        Ok(text) => match CampaignCheckpoint::from_json_str(&text) {
            Ok(cp) if cp.config.to_json().to_string() == cfg.to_json().to_string() => {
                eprintln!(
                    "resuming '{}' from {} ({} of {} trials done)",
                    cfg.name,
                    checkpoint_path.display(),
                    cp.trials_done(),
                    cfg.trial_count()
                );
                Some(cp)
            }
            Ok(_) => {
                eprintln!(
                    "ignoring {}: it snapshots a different campaign",
                    checkpoint_path.display()
                );
                None
            }
            Err(e) => {
                eprintln!("ignoring {}: {e}", checkpoint_path.display());
                None
            }
        },
        Err(_) => None,
    };
    match run_campaign_resumable(cfg, start, &SignalObserver).map_err(|e| e.to_string())? {
        CampaignRun::Complete(result) => {
            let _unused = std::fs::remove_file(&checkpoint_path);
            Ok(result)
        }
        CampaignRun::Interrupted(cp) => {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
            std::fs::write(&checkpoint_path, cp.to_json().to_file_string())
                .map_err(|e| e.to_string())?;
            Err(format!(
                "interrupted by signal after {} of {} trials; resumable checkpoint flushed to {} \
                 (rerun the same command to finish)",
                cp.trials_done(),
                cfg.trial_count(),
                checkpoint_path.display()
            ))
        }
    }
}

/// Parses `--schemes a,b,c` / `--schemes=a,b,c` against the built-in
/// registry, consuming the flag (and its value) from `args`. `Ok(None)`
/// when the flag is absent; `Err` with a CLI-ready message otherwise.
fn parse_schemes_flag(args: &mut Vec<String>) -> Result<Option<Vec<SchemeId>>, String> {
    let mut value: Option<String> = None;
    // Consume every occurrence, so a repeated flag errors instead of
    // leaking its value into the positional figure filter.
    loop {
        let next = if let Some(i) = args.iter().position(|a| a == "--schemes") {
            if i + 1 >= args.len() || args[i + 1].starts_with("--") {
                return Err("--schemes needs a comma-separated id list".into());
            }
            let v = args.remove(i + 1);
            args.remove(i);
            v
        } else if let Some(i) = args.iter().position(|a| a.starts_with("--schemes=")) {
            args.remove(i)["--schemes=".len()..].to_owned()
        } else {
            break;
        };
        if value.is_some() {
            return Err("--schemes given more than once".into());
        }
        value = Some(next);
    }
    let Some(value) = value else { return Ok(None) };
    let registry = builtins();
    let registered = || {
        registry
            .ids()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut ids = Vec::new();
    for token in value.split(',').filter(|t| !t.is_empty()) {
        let id: SchemeId = token
            .parse()
            .map_err(|e| format!("{e}; registered ids: {}", registered()))?;
        if !registry.contains(id.as_str()) {
            return Err(format!(
                "unknown scheme id '{id}'; registered ids: {}",
                registered()
            ));
        }
        ids.push(id);
    }
    if ids.is_empty() {
        return Err(format!(
            "--schemes needs at least one id; registered ids: {}",
            registered()
        ));
    }
    Ok(Some(ids))
}

/// The CI smoke configuration: an 8×8 grid, two targets, one trial —
/// every sweep code path exercised in well under a minute.
fn smoke_config() -> SweepConfig {
    SweepConfig {
        cols: 8,
        rows: 8,
        targets: vec![10, 100],
        trials: 1,
        ..SweepConfig::default()
    }
}

fn main() -> ExitCode {
    // SIGINT/SIGTERM wind campaigns down at the next trial boundary and
    // flush a resumable checkpoint instead of dying mid-matrix.
    shutdown::install_signal_traps();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let schemes = match parse_schemes_flag(&mut args) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let args = args;
    let smoke = args.iter().any(|a| a == "--smoke");
    let quick = args.iter().any(|a| a == "--quick");
    // --masked and --schemes are campaign axes; passing either alone
    // implies --campaign.
    let masked = args.iter().any(|a| a == "--masked");
    let avail = args.iter().any(|a| a == "--avail");
    let degraded = args.iter().any(|a| a == "--degraded");
    let campaign = masked || schemes.is_some() || args.iter().any(|a| a == "--campaign");
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let want = |id: &str| wanted.is_empty() || wanted.iter().any(|w| id.starts_with(w));
    let known = [
        "fig3",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "figpmf",
        "figsc",
        "figmasked",
        "figavail",
        "figdeg",
    ];
    for w in &wanted {
        if !known.iter().any(|k| w.starts_with(k)) {
            eprintln!("unknown figure id '{w}'; known: {}", known.join(", "));
            return ExitCode::FAILURE;
        }
    }

    let dir = out_dir();
    let emit = |id: &str, title: &str, x: &str, y: &str, series: &[wsn_stats::Series]| {
        match figures::render(id, title, x, y, series, Some(&dir)) {
            Ok(text) => println!("{text}"),
            Err(e) => eprintln!("failed to write {id}: {e}"),
        }
    };

    if want("fig3") || want("fig5") {
        let (a3, b3) = figures::fig3();
        if want("fig3") {
            emit(
                "fig3a",
                "Figure 3(a): # of moves, 4x5 grid (L=19), analytical",
                "# of spare nodes left in networks (N)",
                "# of moves",
                &a3,
            );
            emit(
                "fig3b",
                "Figure 3(b): # of moves, 16x16 grid (L=255), analytical",
                "# of spare nodes left in networks (N)",
                "# of moves",
                &b3,
            );
        }
        if want("fig5") {
            let (a5, b5) = figures::fig5();
            emit(
                "fig5a",
                "Figure 5(a): total moving distance, 4x5 grid, r=10, estimate",
                "# of spare nodes left in networks (N)",
                "total moving distance",
                &a5,
            );
            emit(
                "fig5b",
                "Figure 5(b): total moving distance, 16x16 grid, r=10, estimate",
                "# of spare nodes left in networks (N)",
                "total moving distance",
                &b5,
            );
        }
    }

    if campaign && masked && want("figmasked") {
        // The irregular-region axis: SR vs AR (and SR-SC in the smoke
        // matrix) across region shapes, mean curves per (scheme, region).
        let mut cfg = if smoke {
            CampaignConfig::masked_smoke()
        } else if quick {
            CampaignConfig::masked().with_seeds_per_cell(10)
        } else {
            CampaignConfig::masked()
        };
        if let Some(ids) = schemes.clone() {
            cfg.schemes = ids;
        }
        eprintln!(
            "running masked campaign '{}': {} cells x {} seeds ({} trials) ...",
            cfg.name,
            cfg.cell_count(),
            cfg.seeds_per_cell,
            cfg.trial_count()
        );
        let result = match run_campaign_graceful(&cfg, &dir) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("masked campaign failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        match result.save(&dir) {
            Ok((json_path, csv_path)) => eprintln!(
                "campaign artifacts: {} + {}",
                json_path.display(),
                csv_path.display()
            ),
            Err(e) => eprintln!("failed to write campaign artifacts: {e}"),
        }
        let (cols, rows) = cfg.grids[0];
        if want("figmasked_moves") {
            emit(
                "figmasked_moves",
                &format!("Irregular regions: # of node movements by shape ({cols}x{rows})"),
                "# of spare nodes left in networks (N)",
                "# of node moves",
                &figures::campaign_region_series(&result, "moves"),
            );
        }
        if want("figmasked_success") {
            emit(
                "figmasked_success",
                &format!("Irregular regions: success rate (%) by shape ({cols}x{rows})"),
                "# of spare nodes left in networks (N)",
                "percentage",
                &figures::campaign_region_series(&result, "success_rate_percent"),
            );
        }
        if want("figmasked_procs") {
            emit(
                "figmasked_procs",
                &format!("Irregular regions: # of processes initiated by shape ({cols}x{rows})"),
                "# of spare nodes left in networks (N)",
                "# of processes",
                &figures::campaign_region_series(&result, "processes_initiated"),
            );
        }
    } else if campaign && !masked && (want("fig6") || want("fig7") || want("fig8")) {
        let mut cfg = if smoke {
            CampaignConfig::smoke()
        } else if quick {
            CampaignConfig::quick()
        } else {
            CampaignConfig::paper()
        };
        if let Some(ids) = schemes.clone() {
            cfg.schemes = ids;
        }
        eprintln!(
            "running campaign '{}': {} cells x {} seeds ({} trials) ...",
            cfg.name,
            cfg.cell_count(),
            cfg.seeds_per_cell,
            cfg.trial_count()
        );
        let result = match run_campaign_graceful(&cfg, &dir) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("campaign failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        match result.save(&dir) {
            Ok((json_path, csv_path)) => eprintln!(
                "campaign artifacts: {} + {}",
                json_path.display(),
                csv_path.display()
            ),
            Err(e) => eprintln!("failed to write campaign artifacts: {e}"),
        }
        let (cols, rows) = cfg.grids[0];
        let pct = (cfg.ci_level * 100.0).round();
        if want("fig6") {
            emit(
                "fig6a_campaign",
                &format!(
                    "Figure 6(a): # of processes initiated ({cols}x{rows}, {pct}% CI whiskers)"
                ),
                "# of spare nodes left in networks (N)",
                "# of processes",
                &figures::fig6a_campaign(&result),
            );
            emit(
                "fig6b_campaign",
                &format!("Figure 6(b): success rate (%) ({cols}x{rows}, {pct}% CI whiskers)"),
                "# of spare nodes left in networks (N)",
                "percentage",
                &figures::fig6b_campaign(&result),
            );
        }
        if want("fig7") {
            emit(
                "fig7_campaign",
                &format!(
                    "Figure 7: # of node movements ({cols}x{rows}, {pct}% CI whiskers + analytical)"
                ),
                "# of spare nodes left in networks (N)",
                "# of node moves",
                &figures::fig7_campaign(&result),
            );
        }
        if want("fig8") {
            emit(
                "fig8_campaign",
                &format!(
                    "Figure 8: total moving distance ({cols}x{rows}, {pct}% CI whiskers + analytical)"
                ),
                "# of spare nodes left in networks (N)",
                "total moving distance",
                &figures::fig8_campaign(&result),
            );
        }
    } else if want("fig6") || want("fig7") || want("fig8") {
        let cfg = if smoke {
            smoke_config()
        } else if quick {
            SweepConfig::quick()
        } else {
            SweepConfig::default()
        };
        eprintln!(
            "running Monte-Carlo sweep: {} targets x {} trials on {}x{} ...",
            cfg.targets.len(),
            cfg.trials,
            cfg.cols,
            cfg.rows
        );
        let results = run_sweep(&cfg);
        let json_name = format!("sweep_{}x{}.json", cfg.cols, cfg.rows);
        if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| {
            std::fs::write(
                dir.join(&json_name),
                sweep_to_json(&cfg, &results).to_file_string(),
            )
        }) {
            eprintln!("failed to write {json_name}: {e}");
        }

        // A summary table in the spirit of the paper's observations.
        let mut table = TextTable::new(vec![
            "N", "holes", "SR proc", "AR proc", "SR ok%", "AR ok%", "SR moves", "AR moves",
            "SR dist", "AR dist",
        ]);
        for &t in &cfg.targets {
            let rows: Vec<_> = results.iter().filter(|r| r.n_target == t).collect();
            let n = rows.len() as f64;
            let mean =
                |f: &dyn Fn(&&wsn_bench::TrialResult) -> f64| rows.iter().map(f).sum::<f64>() / n;
            table.add_numeric_row(
                t.to_string(),
                &[
                    mean(&|r| r.holes as f64),
                    mean(&|r| r.sr.processes_initiated as f64),
                    mean(&|r| r.ar.processes_initiated as f64),
                    mean(&|r| r.sr.success_rate_percent()),
                    mean(&|r| r.ar.success_rate_percent()),
                    mean(&|r| r.sr.moves as f64),
                    mean(&|r| r.ar.moves as f64),
                    mean(&|r| r.sr.distance),
                    mean(&|r| r.ar.distance),
                ],
                1,
            );
        }
        println!("{table}");
        if let Err(e) = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(dir.join("sweep_summary.txt"), table.to_string()))
        {
            eprintln!("failed to write sweep summary: {e}");
        }

        if want("fig6") {
            emit(
                "fig6a",
                "Figure 6(a): # of replacement processes initiated (16x16)",
                "# of spare nodes left in networks (N)",
                "# of processes",
                &figures::fig6a(&results),
            );
            emit(
                "fig6b",
                "Figure 6(b): success rate (%) (16x16)",
                "# of spare nodes left in networks (N)",
                "percentage",
                &figures::fig6b(&results),
            );
        }
        if want("fig7") {
            emit(
                "fig7",
                "Figure 7: # of node movements (16x16, experimental + analytical)",
                "# of spare nodes left in networks (N)",
                "# of node moves",
                &figures::fig7(&results),
            );
        }
        if want("fig8") {
            emit(
                "fig8",
                "Figure 8: total moving distance in meters (16x16, experimental + analytical)",
                "# of spare nodes left in networks (N)",
                "total moving distance",
                &figures::fig8(&results),
            );
        }
    }

    if avail && want("figavail") {
        // The open-system availability axis: all five schemes under
        // Poisson faults, Poisson arrivals and recurring jammer weather.
        let mut cfg = if smoke {
            CampaignConfig::avail_smoke()
        } else if quick {
            CampaignConfig::avail().with_seeds_per_cell(1)
        } else {
            CampaignConfig::avail()
        };
        if let Some(ids) = schemes.clone() {
            cfg.schemes = ids;
        }
        eprintln!(
            "running steady-state campaign '{}': {} cells x {} seeds x {} ticks ...",
            cfg.name,
            cfg.cell_count(),
            cfg.seeds_per_cell,
            cfg.steady.ticks
        );
        let result = match run_campaign_graceful(&cfg, &dir) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("steady-state campaign failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        match result.save(&dir) {
            Ok((json_path, csv_path)) => eprintln!(
                "campaign artifacts: {} + {}",
                json_path.display(),
                csv_path.display()
            ),
            Err(e) => eprintln!("failed to write campaign artifacts: {e}"),
        }
        let (cols, rows) = cfg.grids[0];
        let pct = (cfg.ci_level * 100.0).round();
        let sla = cfg.steady.coverage_sla * 100.0;
        emit(
            "figavail_availability",
            &format!(
                "Steady state: coverage availability at the {sla}% SLA ({cols}x{rows}, {pct}% CI whiskers)"
            ),
            "# of spare nodes in the initial deployment (N)",
            "availability (fraction of ticks)",
            &figures::figavail_availability(&result),
        );
        emit(
            "figavail_holelife",
            &format!("Steady state: hole-lifetime percentiles ({cols}x{rows})"),
            "# of spare nodes in the initial deployment (N)",
            "hole lifetime (ticks)",
            &figures::figavail_holelife(&result),
        );
        emit(
            "figavail_energy",
            &format!("Steady state: energy burn rate ({cols}x{rows}, {pct}% CI whiskers)"),
            "# of spare nodes in the initial deployment (N)",
            "joules per tick",
            &figures::figavail_energy(&result),
        );
    }

    if degraded && want("figdeg") {
        // The degraded-network axis: the event-capable schemes driven
        // through the latency x loss weather matrix.
        let mut cfg = if smoke {
            CampaignConfig::degraded_smoke()
        } else if quick {
            CampaignConfig::degraded().with_seeds_per_cell(3)
        } else {
            CampaignConfig::degraded()
        };
        if let Some(ids) = schemes.clone() {
            cfg.schemes = ids;
        }
        eprintln!(
            "running degraded campaign '{}': {} cells x {} seeds ({} trials) ...",
            cfg.name,
            cfg.cell_count(),
            cfg.seeds_per_cell,
            cfg.trial_count()
        );
        let result = match run_campaign_graceful(&cfg, &dir) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("degraded campaign failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        match result.save(&dir) {
            Ok((json_path, csv_path)) => eprintln!(
                "campaign artifacts: {} + {}",
                json_path.display(),
                csv_path.display()
            ),
            Err(e) => eprintln!("failed to write campaign artifacts: {e}"),
        }
        let (cols, rows) = cfg.grids[0];
        emit(
            "figdeg_moves",
            &format!("Degraded network: # of node movements by weather ({cols}x{rows})"),
            "# of spare nodes left in networks (N)",
            "# of node moves",
            &figures::figdeg_moves(&result),
        );
        emit(
            "figdeg_success",
            &format!("Degraded network: success rate (%) by weather ({cols}x{rows})"),
            "# of spare nodes left in networks (N)",
            "percentage",
            &figures::figdeg_success(&result),
        );
        emit(
            "figdeg_health",
            &format!("Degraded network: duplicate initiations and lost cascades ({cols}x{rows})"),
            "# of spare nodes left in networks (N)",
            "# of pathologies per run",
            &figures::figdeg_health(&result),
        );
    }

    // Extension figures (not in the paper; see EXPERIMENTS.md).
    if wanted.iter().any(|w| w.starts_with("figpmf")) {
        let trials = if smoke {
            100
        } else if quick {
            300
        } else {
            2000
        };
        eprintln!("simulating {trials} single replacements for the P(i) distribution ...");
        emit(
            "figpmf",
            "Extension: movement-count distribution vs Theorem 2's P(i) (4x5, N=12)",
            "movements i",
            "probability",
            &figures::fig_pmf(trials, 777_000),
        );
    }
    if wanted.iter().any(|w| w.starts_with("figsc")) {
        let cfg = if smoke {
            smoke_config()
        } else if quick {
            SweepConfig::quick()
        } else {
            SweepConfig::default()
        };
        eprintln!("running SR vs SR-SC shortcut sweep ...");
        let (moves, dist) = figures::fig_shortcut(&cfg);
        emit(
            "figsc_moves",
            "Extension: SR vs SR-SC shortcut, total node movements (16x16)",
            "# of spare nodes left in networks (N)",
            "# of node moves",
            &moves,
        );
        emit(
            "figsc_dist",
            "Extension: SR vs SR-SC shortcut, total moving distance (16x16)",
            "# of spare nodes left in networks (N)",
            "total moving distance",
            &dist,
        );
    }

    eprintln!("figures written to {}", dir.display());
    ExitCode::SUCCESS
}
