//! Record/replay harness over the campaign matrix: every trial is
//! re-executable, diffable and shrinkable from a coordinate alone.
//!
//! The simulation layer provides the primitives — lossless trace codecs
//! ([`wsn_simcore::trace`]) plus the event differ and delta-debugging
//! shrinker ([`wsn_simcore::replay`]). This module binds them to the
//! experiment harness:
//!
//! * [`ReplaySpec`] — the address of one run: scheme, drive mode,
//!   region/grid/target/trial coordinate (or a conformance scenario),
//!   master seed and fault schedule. [`record`] re-derives the exact
//!   stream seed and deployment the campaign workers would use (the
//!   same `pub(crate)` functions — one code path, no drift) and runs
//!   the scheme with [`ReplacementScheme::run_traced`].
//! * [`ReplayArtifact`] — a recording saved as a `replay_<coord>.trace`
//!   file: the binary trace container with the spec in its metadata
//!   block, so `replay diff`/`replay shrink` can re-execute it later
//!   with no other context.
//! * [`shrink_between`] — differential delta debugging: the fault
//!   schedule is minimized while two specs (two schemes, or two drive
//!   modes of one scheme, on the identical deployment stream) still
//!   disagree.
//! * [`SabotagedSr`] — the planted conformance bug behind the
//!   self-test flag [`PLANTED_SCHEME_ID`]: a wrapper around real SR
//!   that corrupts one notification event (and over-bills one message)
//!   whenever the fault schedule kills nodes at or after round
//!   [`PLANTED_TRIGGER_ROUND`]. It exists so the whole
//!   record→diff→shrink path is provable end-to-end in CI; it is never
//!   registered in [`wsn_baselines::builtins`].
//!
//! The conformance battery uses [`divergence_message`]: instead of a
//! bare failed assert, a divergence re-runs both drivers traced, writes
//! both artifacts plus the shrunk schedule, and panics with the first
//! divergent event and the artifact paths.

use std::fmt;
use std::path::Path;

use wsn_baselines::{Ar, Smart, Vf};
use wsn_coverage::scheme::{DriveMode, ReplacementScheme, SchemeReport, Sr, SrSc, Unsupported};
use wsn_coverage::SrConfig;
use wsn_grid::{deploy, GridNetwork, GridSystem, RegionShape};
use wsn_simcore::replay::{diff_logs, shrink_fault_plan, ShrinkReport, TraceDiff};
use wsn_simcore::trace::binary;
use wsn_simcore::{FaultEvent, FaultPlan, NetModelSpec, NodeId, SimRng, TraceEvent, TraceLog};

use crate::campaign::{build_trial_network, trial_stream_seed, CampaignConfig, CampaignMode};

/// Schema tag stored in every artifact's metadata block.
pub const ARTIFACT_SCHEMA: &str = "wsn-replay/1";

/// Id of the planted-bug scheme (see [`SabotagedSr`]). Deliberately not
/// a [`wsn_baselines::builtins`] id: it resolves only through
/// [`scheme_with_plan`], i.e. only replay tooling that asks for the
/// self-test fixture by name ever runs it.
pub const PLANTED_SCHEME_ID: &str = "sr-planted";

/// The planted bug triggers when the fault schedule kills listed nodes
/// at or after this round.
pub const PLANTED_TRIGGER_ROUND: u64 = 3;

/// Errors from the replay harness.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ReplayError {
    /// The scheme id is not replayable by this harness.
    UnknownScheme(String),
    /// The scheme cannot carry a fault schedule.
    PlanNotSupported(String),
    /// The scheme refused the spec (region/drive mode).
    Run(String),
    /// An artifact file could not be read or written.
    Io(String),
    /// An artifact's metadata block is missing or malformed.
    BadArtifact(String),
    /// A campaign cell index is out of range.
    BadCell {
        /// The requested cell.
        cell: usize,
        /// Number of cells in the matrix.
        cells: usize,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::UnknownScheme(id) => write!(f, "scheme {id:?} is not replayable"),
            ReplayError::PlanNotSupported(id) => {
                write!(f, "scheme {id:?} does not take a fault schedule")
            }
            ReplayError::Run(e) => write!(f, "scheme refused the replay spec: {e}"),
            ReplayError::Io(e) => write!(f, "artifact I/O failed: {e}"),
            ReplayError::BadArtifact(e) => write!(f, "malformed replay artifact: {e}"),
            ReplayError::BadCell { cell, cells } => {
                write!(f, "campaign cell {cell} out of range (matrix has {cells})")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<Unsupported> for ReplayError {
    fn from(e: Unsupported) -> Self {
        ReplayError::Run(e.to_string())
    }
}

/// How the recorded network was deployed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deployment {
    /// A campaign matrix trial: the deployment comes from the derived
    /// stream seed via the campaign generator for this mode.
    Matrix(CampaignMode),
    /// A conformance scenario (full region only): `holes` cells punched
    /// out of a `per_cell`-dense deployment, seeded directly by
    /// [`ReplaySpec::master_seed`].
    Scenario {
        /// Distinct holes punched into the deployment.
        holes: usize,
        /// Nodes per remaining cell.
        per_cell: usize,
    },
}

/// The full address of one recordable run. Everything [`record`] needs
/// is here — no hidden state — which is what makes artifacts
/// re-executable months later.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplaySpec {
    /// Scheme id (a builtin, or [`PLANTED_SCHEME_ID`]).
    pub scheme: String,
    /// Drive mode for the run.
    pub drive: DriveMode,
    /// Region shape of the trial.
    pub region: RegionShape,
    /// Grid dimensions `(cols, rows)`.
    pub grid: (u16, u16),
    /// Spare target N (matrix deployments; 0 for scenarios).
    pub n_target: usize,
    /// Trial index within the cell (matrix deployments; 0 for
    /// scenarios).
    pub trial: u64,
    /// Campaign master seed (matrix) or the raw scenario seed.
    pub master_seed: u64,
    /// Communication range, meters.
    pub comm_range: f64,
    /// Deployment generator.
    pub deployment: Deployment,
    /// Fault schedule injected into the run (plan-capable schemes only).
    pub fault_plan: FaultPlan,
}

impl ReplaySpec {
    /// A campaign-default spec for `scheme` on a full `cols × rows`
    /// grid: FullRecovery deployment, classic drive, the paper
    /// campaign's master seed and comm range, no faults.
    pub fn matrix(scheme: &str, grid: (u16, u16), n_target: usize, trial: u64) -> ReplaySpec {
        let defaults = CampaignConfig::paper();
        ReplaySpec {
            scheme: scheme.to_string(),
            drive: DriveMode::Classic,
            region: RegionShape::Full,
            grid,
            n_target,
            trial,
            master_seed: defaults.master_seed,
            comm_range: defaults.comm_range,
            deployment: Deployment::Matrix(CampaignMode::FullRecovery),
            fault_plan: FaultPlan::new(),
        }
    }

    /// A conformance-scenario spec (full region): `holes` punched from a
    /// `per_cell`-dense deployment under `seed`.
    pub fn scenario(
        scheme: &str,
        grid: (u16, u16),
        holes: usize,
        per_cell: usize,
        seed: u64,
    ) -> ReplaySpec {
        ReplaySpec {
            scheme: scheme.to_string(),
            drive: DriveMode::Classic,
            region: RegionShape::Full,
            grid,
            n_target: 0,
            trial: 0,
            master_seed: seed,
            comm_range: 10.0,
            deployment: Deployment::Scenario { holes, per_cell },
            fault_plan: FaultPlan::new(),
        }
    }

    /// The spec of campaign trial `(cell, trial)` of `cfg` — the bridge
    /// from a failed campaign coordinate to a replayable artifact.
    /// Degraded-mode cells resolve to the event-driven drive with the
    /// cell's network model, so the spec re-runs exactly what the
    /// campaign worker ran.
    ///
    /// # Errors
    ///
    /// [`ReplayError::BadCell`] when `cell` is outside the matrix.
    pub fn for_campaign_trial(
        cfg: &CampaignConfig,
        cell: usize,
        trial: u64,
    ) -> Result<ReplaySpec, ReplayError> {
        let cells = cfg.cell_count();
        if cell >= cells {
            return Err(ReplayError::BadCell { cell, cells });
        }
        let (scheme, region, grid, n_target) = cfg.cell_params(cell);
        let drive = if cfg.mode == CampaignMode::Degraded {
            DriveMode::EventDriven {
                net: cfg.cell_net(cell),
            }
        } else {
            DriveMode::Classic
        };
        Ok(ReplaySpec {
            scheme: scheme.to_string(),
            drive,
            region,
            grid,
            n_target,
            trial,
            master_seed: cfg.master_seed,
            comm_range: cfg.comm_range,
            deployment: Deployment::Matrix(cfg.mode),
            fault_plan: FaultPlan::new(),
        })
    }

    /// The same spec with a different drive mode.
    #[must_use]
    pub fn with_drive(mut self, drive: DriveMode) -> ReplaySpec {
        self.drive = drive;
        self
    }

    /// The same spec with a different scheme.
    #[must_use]
    pub fn with_scheme(mut self, scheme: &str) -> ReplaySpec {
        self.scheme = scheme.to_string();
        self
    }

    /// The same spec with a different fault schedule.
    #[must_use]
    pub fn with_plan(mut self, plan: FaultPlan) -> ReplaySpec {
        self.fault_plan = plan;
        self
    }

    /// The deterministic RNG stream seed of this spec: the campaign
    /// derivation for matrix trials, the raw seed for scenarios.
    pub fn stream_seed(&self) -> u64 {
        match self.deployment {
            Deployment::Matrix(_) => trial_stream_seed(
                self.master_seed,
                self.region,
                self.grid,
                self.n_target,
                self.trial,
            ),
            Deployment::Scenario { .. } => self.master_seed,
        }
    }

    /// Filesystem-safe coordinate slug, unique per spec (used in
    /// artifact names: `replay_<slug>.trace`).
    pub fn slug(&self) -> String {
        let (cols, rows) = self.grid;
        match self.deployment {
            Deployment::Matrix(_) => format!(
                "{}_{}_{}_{}x{}_n{}_t{}",
                self.scheme,
                drive_str(self.drive),
                self.region.label(),
                cols,
                rows,
                self.n_target,
                self.trial
            ),
            Deployment::Scenario { holes, per_cell } => format!(
                "{}_{}_scn{}x{}_h{}_p{}_s{}",
                self.scheme,
                drive_str(self.drive),
                cols,
                rows,
                holes,
                per_cell,
                self.master_seed
            ),
        }
    }

    /// Rebuilds this spec's deployment — byte-identical to what the
    /// campaign workers (or the conformance battery) would build.
    pub fn build_network(&self) -> GridNetwork {
        match self.deployment {
            Deployment::Matrix(mode) => build_trial_network(
                mode,
                self.comm_range,
                self.region,
                self.grid,
                self.n_target,
                self.stream_seed(),
            ),
            Deployment::Scenario { holes, per_cell } => {
                let (cols, rows) = self.grid;
                let sys = GridSystem::for_comm_range(cols, rows, self.comm_range)
                    .expect("scenario grid dimensions are valid");
                let mut rng = SimRng::seed_from_u64(self.master_seed);
                let hole_coords: Vec<_> = rng
                    .sample_indices(sys.cell_count(), holes)
                    .into_iter()
                    .map(|i| sys.coord_of(i))
                    .collect();
                let pos = deploy::with_holes(&sys, &hole_coords, per_cell, &mut rng);
                GridNetwork::new(sys, &pos)
            }
        }
    }
}

fn drive_str(drive: DriveMode) -> String {
    match drive {
        DriveMode::Classic => "classic".into(),
        DriveMode::ChangeDriven => "change-driven".into(),
        DriveMode::EventDriven { net } => format!("event-{}", net.token()),
    }
}

fn parse_drive(s: &str) -> Result<DriveMode, ReplayError> {
    if let Some(token) = s.strip_prefix("event-") {
        let net = NetModelSpec::parse_token(token).ok_or_else(|| {
            ReplayError::BadArtifact(format!("unknown network model token {token:?}"))
        })?;
        return Ok(DriveMode::EventDriven { net });
    }
    match s {
        "classic" => Ok(DriveMode::Classic),
        "change-driven" => Ok(DriveMode::ChangeDriven),
        other => Err(ReplayError::BadArtifact(format!(
            "unknown drive mode {other:?}"
        ))),
    }
}

fn parse_region(s: &str) -> Result<RegionShape, ReplayError> {
    RegionShape::ALL
        .into_iter()
        .find(|r| r.label() == s)
        .ok_or_else(|| ReplayError::BadArtifact(format!("unknown region {s:?}")))
}

/// Instantiates a replayable scheme with a fault schedule attached.
/// SR-family schemes (and the planted self-test scheme) accept any
/// plan; the structure-free baselines are replayable only with an empty
/// plan (their drivers have no fault hook).
///
/// # Errors
///
/// [`ReplayError::UnknownScheme`] for ids this harness cannot build,
/// [`ReplayError::PlanNotSupported`] when a non-empty plan meets a
/// scheme without a fault hook.
pub fn scheme_with_plan(
    id: &str,
    plan: &FaultPlan,
) -> Result<Box<dyn ReplacementScheme>, ReplayError> {
    match id {
        "sr" => Ok(Box::new(Sr::from_config(
            SrConfig::default().with_fault_plan(plan.clone()),
        ))),
        "sr-sc" => Ok(Box::new(SrSc::from_config(
            SrConfig::default().with_fault_plan(plan.clone()),
        ))),
        PLANTED_SCHEME_ID => Ok(Box::new(SabotagedSr::new(plan.clone()))),
        "ar" | "vf" | "smart" => {
            if !plan.is_empty() {
                return Err(ReplayError::PlanNotSupported(id.to_string()));
            }
            Ok(match id {
                "ar" => Box::new(Ar::new()),
                "vf" => Box::new(Vf::new()),
                _ => Box::new(Smart::new()),
            })
        }
        other => Err(ReplayError::UnknownScheme(other.to_string())),
    }
}

/// One recorded run: the spec, the scheme's report, and the full event
/// trace.
#[derive(Debug, Clone)]
pub struct Recording {
    /// The address that produced this run.
    pub spec: ReplaySpec,
    /// The scheme's report.
    pub report: SchemeReport,
    /// The captured event log.
    pub trace: TraceLog,
}

/// Records one run from its spec alone: rebuild the deployment, run the
/// scheme traced, return everything. Deterministic — recording the same
/// spec twice gives byte-identical traces.
///
/// # Errors
///
/// [`ReplayError`] when the scheme is unknown, refuses the spec, or
/// cannot carry the fault schedule.
pub fn record(spec: &ReplaySpec) -> Result<Recording, ReplayError> {
    let scheme = scheme_with_plan(&spec.scheme, &spec.fault_plan)?;
    let mut net = spec.build_network();
    let (report, trace) = scheme.run_traced(&mut net, spec.stream_seed(), spec.drive)?;
    Ok(Recording {
        spec: spec.clone(),
        report,
        trace,
    })
}

/// Whether two recordings disagree: either the traces diverge or the
/// cost counters (modulo `rounds`, the one legitimately drive-dependent
/// field) differ.
pub fn recordings_diverge(left: &Recording, right: &Recording) -> bool {
    !diff_logs(&left.trace, &right.trace).is_clean()
        || left.report.metrics.ignoring_rounds() != right.report.metrics.ignoring_rounds()
}

/// Minimizes `left.fault_plan` while the two specs still disagree
/// (trace or cost divergence) under the shrunk schedule. The two specs
/// are re-recorded for every candidate — expensive but exact; the
/// returned report counts the oracle calls.
///
/// # Errors
///
/// [`ReplayError`] when either scheme cannot be instantiated with the
/// initial plan (candidate plans that fail to run are treated as
/// non-reproducing instead).
pub fn shrink_between(left: &ReplaySpec, right: &ReplaySpec) -> Result<ShrinkReport, ReplayError> {
    scheme_with_plan(&left.scheme, &left.fault_plan)?;
    scheme_with_plan(&right.scheme, &left.fault_plan)?;
    Ok(shrink_fault_plan(&left.fault_plan, |plan| {
        let l = record(&left.clone().with_plan(plan.clone()));
        let r = record(&right.clone().with_plan(plan.clone()));
        match (l, r) {
            (Ok(l), Ok(r)) => recordings_diverge(&l, &r),
            _ => false,
        }
    }))
}

/// Renders a fault schedule as the compact text form stored in artifact
/// metadata and `.shrunk.txt` files: `round:kind:args` batches joined
/// by `;`. Floats use shortest round-trip notation, so
/// [`fault_plan_from_str`] inverts this exactly.
pub fn fault_plan_to_string(plan: &FaultPlan) -> String {
    plan.events()
        .iter()
        .map(|e| match &e.event {
            FaultEvent::KillNodes(ids) => format!(
                "{}:kill-nodes:{}",
                e.round,
                ids.iter()
                    .map(|id| id.raw().to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            FaultEvent::KillRandomEnabled { count } => {
                format!("{}:kill-random:{count}", e.round)
            }
            FaultEvent::KillRegion(d) => format!(
                "{}:kill-region:{},{},{}",
                e.round,
                d.center().x,
                d.center().y,
                d.radius()
            ),
        })
        .collect::<Vec<_>>()
        .join(";")
}

/// Parses the text form produced by [`fault_plan_to_string`].
///
/// # Errors
///
/// [`ReplayError::BadArtifact`] naming the malformed batch.
pub fn fault_plan_from_str(s: &str) -> Result<FaultPlan, ReplayError> {
    let mut plan = FaultPlan::new();
    for batch in s.split(';') {
        let batch = batch.trim();
        if batch.is_empty() {
            continue;
        }
        let bad = || ReplayError::BadArtifact(format!("bad fault batch {batch:?}"));
        let mut parts = batch.splitn(3, ':');
        let round: u64 = parts.next().and_then(|p| p.parse().ok()).ok_or_else(bad)?;
        let kind = parts.next().ok_or_else(bad)?;
        let args = parts.next().unwrap_or("");
        let event = match kind {
            "kill-nodes" => {
                let mut ids = Vec::new();
                for tok in args.split(',').filter(|t| !t.is_empty()) {
                    ids.push(NodeId::new(tok.parse().map_err(|_| bad())?));
                }
                FaultEvent::KillNodes(ids)
            }
            "kill-random" => FaultEvent::KillRandomEnabled {
                count: args.parse().map_err(|_| bad())?,
            },
            "kill-region" => {
                let nums: Vec<f64> = args
                    .split(',')
                    .map(|t| t.parse::<f64>().map_err(|_| bad()))
                    .collect::<Result<_, _>>()?;
                let [x, y, r] = nums[..] else {
                    return Err(bad());
                };
                let disk = wsn_geometry::Disk::new(wsn_geometry::Point2::new(x, y), r)
                    .map_err(|_| bad())?;
                FaultEvent::KillRegion(disk)
            }
            _ => return Err(bad()),
        };
        plan = plan.at(round, event);
    }
    Ok(plan)
}

/// A saved recording: the spec (plus the baseline it diverged from, if
/// any) and the trace, serialized into the binary trace container's
/// metadata block.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayArtifact {
    /// The recorded run's address.
    pub spec: ReplaySpec,
    /// The scheme + drive this run was compared against, when the
    /// artifact documents a divergence.
    pub baseline: Option<(String, DriveMode)>,
    /// The recorded event log.
    pub trace: TraceLog,
}

impl ReplayArtifact {
    /// Wraps a recording (drops the report — it is reproducible from
    /// the spec).
    pub fn from_recording(rec: &Recording, baseline: Option<(String, DriveMode)>) -> Self {
        ReplayArtifact {
            spec: rec.spec.clone(),
            baseline,
            trace: rec.trace.clone(),
        }
    }

    /// Canonical artifact file name: `replay_<coordinate slug>.trace`.
    pub fn file_name(&self) -> String {
        format!("replay_{}.trace", self.spec.slug())
    }

    /// Serializes into the binary trace container with the spec in the
    /// metadata block.
    pub fn to_bytes(&self) -> Vec<u8> {
        let (cols, rows) = self.spec.grid;
        let mut meta: Vec<(String, String)> = vec![
            ("schema".into(), ARTIFACT_SCHEMA.into()),
            ("scheme".into(), self.spec.scheme.clone()),
            ("drive".into(), drive_str(self.spec.drive)),
            ("region".into(), self.spec.region.label().into()),
            ("cols".into(), cols.to_string()),
            ("rows".into(), rows.to_string()),
            ("n_target".into(), self.spec.n_target.to_string()),
            ("trial".into(), self.spec.trial.to_string()),
            ("master_seed".into(), self.spec.master_seed.to_string()),
            ("comm_range".into(), self.spec.comm_range.to_string()),
            (
                "deployment".into(),
                match self.spec.deployment {
                    Deployment::Matrix(CampaignMode::FullRecovery) => "full-recovery".into(),
                    Deployment::Matrix(CampaignMode::SingleReplacement) => {
                        "single-replacement".into()
                    }
                    Deployment::Matrix(CampaignMode::SteadyState) => "steady-state".into(),
                    Deployment::Matrix(CampaignMode::Degraded) => "degraded".into(),
                    Deployment::Scenario { holes, per_cell } => {
                        format!("scenario:{holes}:{per_cell}")
                    }
                },
            ),
            (
                "fault_plan".into(),
                fault_plan_to_string(&self.spec.fault_plan),
            ),
        ];
        if let Some((scheme, drive)) = &self.baseline {
            meta.push(("baseline".into(), scheme.clone()));
            meta.push(("baseline_drive".into(), drive_str(*drive)));
        }
        binary::encode(&meta, &self.trace)
    }

    /// Deserializes an artifact produced by [`ReplayArtifact::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`ReplayError::BadArtifact`] on codec errors, a wrong schema tag
    /// or missing/malformed metadata.
    pub fn from_bytes(bytes: &[u8]) -> Result<ReplayArtifact, ReplayError> {
        let (meta, trace) =
            binary::decode(bytes).map_err(|e| ReplayError::BadArtifact(e.to_string()))?;
        let get = |key: &str| -> Result<&str, ReplayError> {
            meta.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| ReplayError::BadArtifact(format!("missing meta key {key:?}")))
        };
        let schema = get("schema")?;
        if schema != ARTIFACT_SCHEMA {
            return Err(ReplayError::BadArtifact(format!(
                "unsupported schema {schema:?}"
            )));
        }
        let parse_num = |key: &str| -> Result<u64, ReplayError> {
            get(key)?
                .parse()
                .map_err(|_| ReplayError::BadArtifact(format!("bad meta value for {key:?}")))
        };
        let deployment = match get("deployment")? {
            "full-recovery" => Deployment::Matrix(CampaignMode::FullRecovery),
            "single-replacement" => Deployment::Matrix(CampaignMode::SingleReplacement),
            "steady-state" => Deployment::Matrix(CampaignMode::SteadyState),
            "degraded" => Deployment::Matrix(CampaignMode::Degraded),
            s if s.starts_with("scenario:") => {
                let rest: Vec<&str> = s["scenario:".len()..].split(':').collect();
                let [holes, per_cell] = rest[..] else {
                    return Err(ReplayError::BadArtifact(format!("bad deployment {s:?}")));
                };
                Deployment::Scenario {
                    holes: holes
                        .parse()
                        .map_err(|_| ReplayError::BadArtifact("bad scenario holes".into()))?,
                    per_cell: per_cell
                        .parse()
                        .map_err(|_| ReplayError::BadArtifact("bad scenario per_cell".into()))?,
                }
            }
            other => {
                return Err(ReplayError::BadArtifact(format!(
                    "unknown deployment {other:?}"
                )))
            }
        };
        let baseline = match meta.iter().find(|(k, _)| k == "baseline") {
            Some((_, scheme)) => Some((scheme.clone(), parse_drive(get("baseline_drive")?)?)),
            None => None,
        };
        let spec = ReplaySpec {
            scheme: get("scheme")?.to_string(),
            drive: parse_drive(get("drive")?)?,
            region: parse_region(get("region")?)?,
            grid: (parse_num("cols")? as u16, parse_num("rows")? as u16),
            n_target: parse_num("n_target")? as usize,
            trial: parse_num("trial")?,
            master_seed: parse_num("master_seed")?,
            comm_range: get("comm_range")?
                .parse()
                .map_err(|_| ReplayError::BadArtifact("bad comm_range".into()))?,
            deployment,
            fault_plan: fault_plan_from_str(get("fault_plan")?)?,
        };
        Ok(ReplayArtifact {
            spec,
            baseline,
            trace,
        })
    }

    /// Writes the artifact to `path`.
    ///
    /// # Errors
    ///
    /// [`ReplayError::Io`] on filesystem failures.
    pub fn save(&self, path: &Path) -> Result<(), ReplayError> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| ReplayError::Io(e.to_string()))?;
        }
        std::fs::write(path, self.to_bytes()).map_err(|e| ReplayError::Io(e.to_string()))
    }

    /// Reads an artifact from `path`.
    ///
    /// # Errors
    ///
    /// [`ReplayError::Io`] on filesystem failures,
    /// [`ReplayError::BadArtifact`] on malformed contents.
    pub fn load(path: &Path) -> Result<ReplayArtifact, ReplayError> {
        let bytes = std::fs::read(path).map_err(|e| ReplayError::Io(e.to_string()))?;
        ReplayArtifact::from_bytes(&bytes)
    }

    /// Re-executes the artifact's spec and diffs the fresh trace against
    /// the recorded one — the golden-fixture check: a committed trace
    /// must replay clean on every machine.
    ///
    /// # Errors
    ///
    /// [`ReplayError`] when the spec no longer runs.
    pub fn verify(&self) -> Result<TraceDiff, ReplayError> {
        let fresh = record(&self.spec)?;
        Ok(diff_logs(&self.trace, &fresh.trace))
    }
}

/// On-divergence reporting for the conformance battery: re-records both
/// sides traced, writes both artifacts (cross-referenced as each
/// other's baseline) into `dir`, shrinks the fault schedule when there
/// is one, writes the shrunk schedule next to the artifacts, and
/// returns the assembled panic message — first divergent event,
/// artifact paths, minimal schedule.
///
/// # Errors
///
/// [`ReplayError`] when recording or writing fails; callers in test
/// code usually `unwrap_or_else` into a plainer panic.
pub fn divergence_message(
    dir: &Path,
    tag: &str,
    left: &ReplaySpec,
    right: &ReplaySpec,
) -> Result<String, ReplayError> {
    use std::fmt::Write as _;
    let left_rec = record(left)?;
    let right_rec = record(right)?;
    let diff = diff_logs(&left_rec.trace, &right_rec.trace);
    let left_art =
        ReplayArtifact::from_recording(&left_rec, Some((right.scheme.clone(), right.drive)));
    let right_art =
        ReplayArtifact::from_recording(&right_rec, Some((left.scheme.clone(), left.drive)));
    let left_path = dir.join(left_art.file_name());
    let right_path = dir.join(right_art.file_name());
    left_art.save(&left_path)?;
    right_art.save(&right_path)?;
    let mut msg = format!(
        "{tag}: runs diverged\n{diff}\nartifacts:\n  {}\n  {}\n",
        left_path.display(),
        right_path.display()
    );
    if !left.fault_plan.is_empty() {
        let shrunk = shrink_between(left, right)?;
        if shrunk.reproduced {
            let text = fault_plan_to_string(&shrunk.plan);
            let shrunk_path = dir.join(format!("replay_{}.shrunk.txt", left.spec_slug_base()));
            std::fs::write(&shrunk_path, format!("{text}\n"))
                .map_err(|e| ReplayError::Io(e.to_string()))?;
            let _ = write!(
                msg,
                "minimal failing schedule ({} of {} batches, {} oracle runs): {}\n  {}",
                shrunk.plan.events().len(),
                shrunk.initial_batches,
                shrunk.oracle_calls,
                if text.is_empty() { "<empty>" } else { &text },
                shrunk_path.display()
            );
        }
    }
    Ok(msg)
}

impl ReplaySpec {
    /// Slug without the drive-mode segment (shared by the two sides of
    /// a conformance divergence).
    fn spec_slug_base(&self) -> String {
        self.slug()
            .replace(&format!("_{}_", drive_str(self.drive)), "_")
    }
}

/// Compares the trace of a recording against the counters its report
/// claims: every billed move leaves exactly one `node_moved` event, so
/// for a traced run `count_kind("node_moved")` must equal
/// `metrics.moves`. (THEORY.md maps the paper's one-message-per-hop and
/// single-initiation claims onto the trace vocabulary the same way.)
pub fn trace_matches_metrics(rec: &Recording) -> Result<(), String> {
    let moves = rec.trace.count_kind("node_moved") as u64;
    if rec.trace.is_enabled() && moves != rec.report.metrics.moves {
        return Err(format!(
            "trace records {moves} node_moved events but metrics bill {}",
            rec.report.metrics.moves
        ));
    }
    Ok(())
}

/// The planted conformance bug (test fixture): real SR, except that
/// when the fault schedule kills listed nodes at or after
/// [`PLANTED_TRIGGER_ROUND`] it corrupts the first notification event
/// recorded at or after that round (re-routing it to its own sender)
/// and bills one phantom message. Both corruptions are deterministic,
/// so the divergence against real SR reproduces bit-identically —
/// which is exactly what the shrinker tests and the CI smoke need.
///
/// Never registered in [`wsn_baselines::builtins`]; only
/// [`scheme_with_plan`] resolves it, by the explicit id
/// [`PLANTED_SCHEME_ID`].
#[derive(Debug)]
pub struct SabotagedSr {
    inner: Sr,
    plan: FaultPlan,
}

impl SabotagedSr {
    /// A planted-bug SR carrying `plan`.
    pub fn new(plan: FaultPlan) -> SabotagedSr {
        SabotagedSr {
            inner: Sr::from_config(SrConfig::default().with_fault_plan(plan.clone())),
            plan,
        }
    }

    fn triggered(&self) -> bool {
        self.plan.events().iter().any(|e| {
            e.round >= PLANTED_TRIGGER_ROUND
                && matches!(&e.event, FaultEvent::KillNodes(ids) if !ids.is_empty())
        })
    }
}

impl ReplacementScheme for SabotagedSr {
    fn id(&self) -> &str {
        PLANTED_SCHEME_ID
    }

    fn label(&self) -> &str {
        "SR (planted bug)"
    }

    fn supports(&self, spec: &wsn_coverage::scheme::NetworkSpec) -> Result<(), Unsupported> {
        self.inner.supports(spec)
    }

    fn supports_change_driven(&self) -> bool {
        true
    }

    fn run(
        &self,
        net: &mut GridNetwork,
        seed: u64,
        mode: DriveMode,
    ) -> Result<SchemeReport, Unsupported> {
        self.run_traced(net, seed, mode).map(|(report, _)| report)
    }

    fn run_traced(
        &self,
        net: &mut GridNetwork,
        seed: u64,
        mode: DriveMode,
    ) -> Result<(SchemeReport, TraceLog), Unsupported> {
        let (mut report, trace) = self.inner.run_traced(net, seed, mode)?;
        if !self.triggered() {
            return Ok((report, trace));
        }
        report.metrics.messages += 1;
        let mut corrupted = TraceLog::new();
        let mut done = false;
        for r in trace.records() {
            match &r.event {
                TraceEvent::NotificationSent { process, from, .. }
                    if !done && r.round >= PLANTED_TRIGGER_ROUND =>
                {
                    done = true;
                    corrupted.record(
                        r.round,
                        TraceEvent::NotificationSent {
                            process: *process,
                            from: *from,
                            to: *from, // the bug: notification routed to its own sender
                        },
                    );
                }
                _ => corrupted.record(r.round, r.event.clone()),
            }
        }
        if !done {
            // No notification after the trigger round (the killed nodes
            // left no vacancy): fabricate a phantom one so the bug is
            // still observable whenever it is armed.
            let round = trace.records().last().map_or(0, |r| r.round) + 1;
            corrupted.record(
                round,
                TraceEvent::NotificationSent {
                    process: 0,
                    from: (0, 0),
                    to: (0, 0),
                },
            );
        }
        Ok((report, corrupted))
    }
}
