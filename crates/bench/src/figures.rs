//! Per-figure series generators and rendering.

use std::io;
use std::path::Path;

use wsn_coverage::analysis;
use wsn_stats::{csv, plot::AsciiPlot, Series};

use crate::campaign::CampaignResult;
use crate::steady::SteadySummary;
use crate::sweep::TrialResult;
use wsn_stats::StreamingStat;

/// `L` for the paper's 4×5 grid (Figure 3(a)).
pub const L_4X5: usize = 19;
/// `L` for the paper's 16×16 grid (Figure 3(b)).
pub const L_16X16: usize = 255;
/// Cell side used by Figures 5–8 overlays (`r = R/√5`, `R = 10 m`).
pub const R_16X16: f64 = 10.0 / 2.236_067_977_499_79;

/// Figure 3: analytical number of movements per replacement vs `N`.
/// Returns `(fig3a, fig3b)` — the 4×5 (`L = 19`, N ≤ 140) and 16×16
/// (`L = 255`, N ≤ 1400) curves.
pub fn fig3() -> (Vec<Series>, Vec<Series>) {
    let a = Series::from_points(
        "analytical M(19, N)",
        (1..=140)
            .map(|n| (n as f64, analysis::expected_moves(L_4X5, n)))
            .collect(),
    );
    let b = Series::from_points(
        "analytical M(255, N)",
        (1..=1400)
            .step_by(5)
            .map(|n| (n as f64, analysis::expected_moves(L_16X16, n)))
            .collect(),
    );
    (vec![a], vec![b])
}

/// Figure 5: analytical total moving distance per replacement vs `N`,
/// with the paper's `r = 10` (its Figure 5 caption). Returns
/// `(fig5a, fig5b)`.
pub fn fig5() -> (Vec<Series>, Vec<Series>) {
    let r = 10.0;
    let a = Series::from_points(
        "estimate 1.08*r*M(19, N)",
        (1..=140)
            .map(|n| (n as f64, analysis::expected_distance(L_4X5, n, r)))
            .collect(),
    );
    let b = Series::from_points(
        "estimate 1.08*r*M(255, N)",
        (1..=1000)
            .step_by(5)
            .map(|n| (n as f64, analysis::expected_distance(L_16X16, n, r)))
            .collect(),
    );
    (vec![a], vec![b])
}

fn mean_by_target<F: Fn(&TrialResult) -> f64>(
    results: &[TrialResult],
    label: &str,
    f: F,
) -> Series {
    let mut raw = Series::new(label);
    for r in results {
        raw.push(r.n_target as f64, f(r));
    }
    raw.aggregate_mean()
}

/// Figure 6(a): number of replacement processes initiated, AR vs SR.
pub fn fig6a(results: &[TrialResult]) -> Vec<Series> {
    vec![
        mean_by_target(results, "AR", |r| r.ar.processes_initiated as f64),
        mean_by_target(results, "SR", |r| r.sr.processes_initiated as f64),
    ]
}

/// Figure 6(b): per-process success rate (%), AR vs SR.
pub fn fig6b(results: &[TrialResult]) -> Vec<Series> {
    vec![
        mean_by_target(results, "AR", |r| r.ar.success_rate_percent()),
        mean_by_target(results, "SR", |r| r.sr.success_rate_percent()),
    ]
}

/// The Theorem-2 overlay for one trial, as the paper plots it
/// (Figure 7(b)): each of the `holes` replacements costs `M(L, N)`
/// movements at the trial's spare level `N`, so the expected total is
/// `holes · M(L, N)`.
///
/// This is an upper-ish estimate: during recovery the live spare count
/// ranges from `N + holes` down to `N`, so experimental totals sit
/// somewhat below the overlay at low `N` — the same relationship visible
/// between the paper's Figures 7(a) and 7(b).
pub fn analytical_total_moves(l: usize, n_target: usize, holes: usize) -> f64 {
    if holes == 0 {
        return 0.0;
    }
    holes as f64 * analysis::expected_moves(l, n_target.max(1))
}

/// Figure 7: total number of node movements vs `N` — experimental AR and
/// SR (7(a)) plus the analytical SR overlay (7(b)).
pub fn fig7(results: &[TrialResult]) -> Vec<Series> {
    let l = L_16X16;
    vec![
        mean_by_target(results, "AR", |r| r.ar.moves as f64),
        mean_by_target(results, "SR", |r| r.sr.moves as f64),
        mean_by_target(results, "SR analytical", |r| {
            analytical_total_moves(l, r.n_target, r.holes)
        }),
    ]
}

/// Figure 8: total moving distance (meters) vs `N` — experimental AR and
/// SR (8(a)) plus the analytical SR overlay (8(b),
/// `1.08 · r · Σ M`).
pub fn fig8(results: &[TrialResult]) -> Vec<Series> {
    let l = L_16X16;
    vec![
        mean_by_target(results, "AR", |r| r.ar.distance),
        mean_by_target(results, "SR", |r| r.sr.distance),
        mean_by_target(results, "SR analytical", |r| {
            wsn_geometry::CellGeometry::AVG_MOVE_FACTOR
                * R_16X16
                * analytical_total_moves(l, r.n_target, r.holes)
        }),
    ]
}

/// One metric of one grid of a completed campaign as figure series: per
/// scheme (legend order = campaign scheme order) the mean curve over
/// `N`, plus — when `whiskers` is set — the lower/upper bounds of the
/// campaign's confidence interval as `"<scheme> loXX"` / `"<scheme>
/// hiXX"` companion curves. This is how the paper's point-estimate
/// figures gain error bars: a ≥30-seed campaign makes the
/// normal-approximation interval defensible per cell.
///
/// # Panics
///
/// Panics when the campaign lacks a cell of the requested grid or
/// `metric` is not a [`wsn_simcore::Metrics::FIELD_NAMES`] entry.
pub fn campaign_series(
    res: &CampaignResult,
    cols: u16,
    rows: u16,
    metric: &str,
    whiskers: bool,
) -> Vec<Series> {
    let level_pct = (res.config.ci_level * 100.0).round() as u32;
    let mut out = Vec::new();
    for scheme in &res.config.schemes {
        // Legends use the registry label carried by the cells (e.g.
        // "SR-SC" for id sr-sc).
        let label = res
            .cells
            .iter()
            .find(|c| c.scheme == *scheme)
            .expect("campaign contains every configured scheme")
            .label
            .clone();
        let mut mean = Series::new(label.clone());
        let mut lo = Series::new(format!("{label} lo{level_pct}"));
        let mut hi = Series::new(format!("{label} hi{level_pct}"));
        for &n in &res.config.targets {
            let cell = res
                .cell(scheme.as_str(), cols, rows, n)
                .expect("campaign contains the requested grid");
            let ci = cell
                .metric(metric)
                .expect("metric is a Metrics field")
                .ci(res.config.ci_level);
            mean.push(n as f64, ci.mean);
            lo.push(n as f64, ci.low());
            hi.push(n as f64, ci.high());
        }
        out.push(mean);
        if whiskers {
            out.push(lo);
            out.push(hi);
        }
    }
    out
}

/// Figure 6(a) from a campaign: processes initiated, with CI whiskers.
/// Uses the campaign's first grid (the paper's 16×16 for
/// [`crate::campaign::CampaignConfig::paper`]).
pub fn fig6a_campaign(res: &CampaignResult) -> Vec<Series> {
    let (cols, rows) = res.config.grids[0];
    campaign_series(res, cols, rows, "processes_initiated", true)
}

/// Figure 6(b) from a campaign: success rate (%), with CI whiskers.
pub fn fig6b_campaign(res: &CampaignResult) -> Vec<Series> {
    let (cols, rows) = res.config.grids[0];
    campaign_series(res, cols, rows, "success_rate_percent", true)
}

/// The Theorem-2 overlay for a campaign cell: `mean_holes · M(L, N)`
/// with `L = cols·rows − 1` (each replacement walks the single Hamilton
/// cycle minus its own hole). `None` when the campaign has no SR cells
/// to anchor the overlay (Theorem 2 is SR's closed form).
fn campaign_analytical_moves(res: &CampaignResult, cols: u16, rows: u16) -> Option<Series> {
    let l = cols as usize * rows as usize - 1;
    if !res.config.schemes.iter().any(|s| s.as_str() == "sr") {
        return None;
    }
    let mut overlay = Series::new("SR analytical");
    for &n in &res.config.targets {
        let cell = res.cell("sr", cols, rows, n).expect("grid in campaign");
        let holes = cell.holes.summary().mean();
        overlay.push(n as f64, holes * analysis::expected_moves(l, n.max(1)));
    }
    Some(overlay)
}

/// Figure 7 from a campaign: total node movements with CI whiskers,
/// plus the analytical SR overlay when SR is in the matrix.
pub fn fig7_campaign(res: &CampaignResult) -> Vec<Series> {
    let (cols, rows) = res.config.grids[0];
    let mut series = campaign_series(res, cols, rows, "moves", true);
    series.extend(campaign_analytical_moves(res, cols, rows));
    series
}

/// Figure 8 from a campaign: total moving distance with CI whiskers,
/// plus the analytical SR overlay (`1.08 · r · Σ M`) when SR is in the
/// matrix.
pub fn fig8_campaign(res: &CampaignResult) -> Vec<Series> {
    let (cols, rows) = res.config.grids[0];
    let mut series = campaign_series(res, cols, rows, "distance", true);
    let r = res.config.comm_range / 5f64.sqrt();
    series.extend(campaign_analytical_moves(res, cols, rows).map(|moves| {
        Series::from_points(
            "SR analytical",
            moves
                .points()
                .iter()
                .map(|&(x, y)| (x, wsn_geometry::CellGeometry::AVG_MOVE_FACTOR * r * y))
                .collect(),
        )
    }));
    series
}

/// One mean curve (plus CI whiskers) per scheme over the spare targets,
/// reading a per-trial [`StreamingStat`] out of each cell's
/// [`SteadySummary`] — the steady-state analog of [`campaign_series`].
///
/// # Panics
///
/// Panics when the campaign was not run under
/// [`CampaignMode::SteadyState`](crate::campaign::CampaignMode) (no
/// cell carries a summary).
fn steady_stat_series(
    res: &CampaignResult,
    pick: impl Fn(&SteadySummary) -> &StreamingStat,
) -> Vec<Series> {
    let (cols, rows) = res.config.grids[0];
    let level_pct = (res.config.ci_level * 100.0).round() as u32;
    let mut out = Vec::new();
    for scheme in &res.config.schemes {
        let label = res
            .cells
            .iter()
            .find(|c| c.scheme == *scheme)
            .expect("campaign contains every configured scheme")
            .label
            .clone();
        let mut mean = Series::new(label.clone());
        let mut lo = Series::new(format!("{label} lo{level_pct}"));
        let mut hi = Series::new(format!("{label} hi{level_pct}"));
        for &n in &res.config.targets {
            let cell = res
                .cell(scheme.as_str(), cols, rows, n)
                .expect("campaign contains the requested grid");
            let summary = cell
                .steady
                .as_ref()
                .expect("steady figures need a steady-state campaign");
            let ci = pick(summary).ci(res.config.ci_level);
            mean.push(n as f64, ci.mean);
            lo.push(n as f64, ci.low());
            hi.push(n as f64, ci.high());
        }
        out.push(mean);
        out.push(lo);
        out.push(hi);
    }
    out
}

/// Steady-state coverage availability per scheme vs spare target `N`,
/// with CI whiskers: the fraction of ticks whose post-repair coverage
/// met the SLA of the campaign's [`crate::steady::SteadyParams`].
pub fn figavail_availability(res: &CampaignResult) -> Vec<Series> {
    steady_stat_series(res, |s| &s.availability)
}

/// Hole-lifetime tail percentiles per scheme vs spare target `N`: p50
/// and p99 from the merged per-cell histograms (`"<label> p50"` /
/// `"<label> p99"`; cells with no repaired hole plot at 0).
pub fn figavail_holelife(res: &CampaignResult) -> Vec<Series> {
    let (cols, rows) = res.config.grids[0];
    let mut out = Vec::new();
    for scheme in &res.config.schemes {
        let label = res
            .cells
            .iter()
            .find(|c| c.scheme == *scheme)
            .expect("campaign contains every configured scheme")
            .label
            .clone();
        let mut p50 = Series::new(format!("{label} p50"));
        let mut p99 = Series::new(format!("{label} p99"));
        for &n in &res.config.targets {
            let cell = res
                .cell(scheme.as_str(), cols, rows, n)
                .expect("campaign contains the requested grid");
            let summary = cell
                .steady
                .as_ref()
                .expect("steady figures need a steady-state campaign");
            p50.push(n as f64, summary.lifetime_percentile(50.0).unwrap_or(0.0));
            p99.push(n as f64, summary.lifetime_percentile(99.0).unwrap_or(0.0));
        }
        out.push(p50);
        out.push(p99);
    }
    out
}

/// Energy burn rate (joules per tick, movement + messages + idle) per
/// scheme vs spare target `N`, with CI whiskers.
pub fn figavail_energy(res: &CampaignResult) -> Vec<Series> {
    steady_stat_series(res, |s| &s.energy_rate)
}

/// Degraded-network comparison from a [`CampaignMode::Degraded`]
/// campaign: one mean curve per `(scheme, network model)` pair for
/// `metric` over the spare targets. Labels read `"<label>@<net token>"`
/// (e.g. `"SR@loss300000-lat1"`), so the figure shows at a glance how
/// each scheme degrades as the weather worsens.
///
/// [`CampaignMode::Degraded`]: crate::campaign::CampaignMode::Degraded
///
/// # Panics
///
/// Panics when the campaign was not run in degraded mode or `metric`
/// is not a [`wsn_simcore::Metrics::FIELD_NAMES`] entry.
pub fn campaign_net_series(res: &CampaignResult, metric: &str) -> Vec<Series> {
    let mut out = Vec::new();
    for scheme in &res.config.schemes {
        let label = res
            .cells
            .iter()
            .find(|c| c.scheme == *scheme)
            .expect("campaign contains every configured scheme")
            .label
            .clone();
        for combo in 0..res.config.degraded.combo_count() {
            let net = res.config.degraded.spec(combo);
            let mut series = Series::new(format!("{}@{}", label, net.token()));
            for &n in &res.config.targets {
                let cell = res
                    .cell_with_net(scheme.as_str(), n, net)
                    .expect("degraded campaign contains every weather cell");
                let mean = cell
                    .metric(metric)
                    .expect("metric is a Metrics field")
                    .summary()
                    .mean();
                series.push(n as f64, mean);
            }
            out.push(series);
        }
    }
    out
}

/// Degraded sweep: total node movements per `(scheme, network model)`.
pub fn figdeg_moves(res: &CampaignResult) -> Vec<Series> {
    campaign_net_series(res, "moves")
}

/// Degraded sweep: success rate (%) per `(scheme, network model)`.
pub fn figdeg_success(res: &CampaignResult) -> Vec<Series> {
    campaign_net_series(res, "success_rate_percent")
}

/// Degraded sweep: the distributed-health ledger — mean duplicate
/// initiations (`"<label>@<net> dup"`) and lost cascades
/// (`"<label>@<net> lost"`) per `(scheme, network model)` over the
/// spare targets. Under ideal weather every curve sits at zero; the
/// figure is the cost of weather in protocol pathologies rather than
/// raw coverage.
///
/// # Panics
///
/// Panics when the campaign was not run in degraded mode.
pub fn figdeg_health(res: &CampaignResult) -> Vec<Series> {
    let mut out = Vec::new();
    for scheme in &res.config.schemes {
        let label = res
            .cells
            .iter()
            .find(|c| c.scheme == *scheme)
            .expect("campaign contains every configured scheme")
            .label
            .clone();
        for combo in 0..res.config.degraded.combo_count() {
            let net = res.config.degraded.spec(combo);
            let mut dup = Series::new(format!("{}@{} dup", label, net.token()));
            let mut lost = Series::new(format!("{}@{} lost", label, net.token()));
            for &n in &res.config.targets {
                let health = res
                    .cell_with_net(scheme.as_str(), n, net)
                    .expect("degraded campaign contains every weather cell")
                    .health
                    .as_ref()
                    .expect("degraded cells carry health aggregates");
                dup.push(n as f64, health.duplicate_initiations.summary().mean());
                lost.push(n as f64, health.lost_cascades.summary().mean());
            }
            out.push(dup);
            out.push(lost);
        }
    }
    out
}

/// Irregular-region comparison from a multi-region campaign: one mean
/// curve per `(scheme, region)` pair for `metric` over the spare
/// targets, on the campaign's first grid. Labels read
/// `"<scheme>@<region>"` (e.g. `"SR@annulus"`), so the figure shows at a
/// glance how each scheme degrades (or does not) as the region gets
/// harder.
///
/// # Panics
///
/// Panics when the campaign lacks a requested cell or `metric` is not a
/// [`wsn_simcore::Metrics::FIELD_NAMES`] entry.
pub fn campaign_region_series(res: &CampaignResult, metric: &str) -> Vec<Series> {
    let (cols, rows) = res.config.grids[0];
    let mut out = Vec::new();
    for scheme in &res.config.schemes {
        for &region in &res.config.regions {
            let label = res
                .cells
                .iter()
                .find(|c| c.scheme == *scheme)
                .expect("campaign contains every configured scheme")
                .label
                .clone();
            let mut series = Series::new(format!("{}@{}", label, region.label()));
            for &n in &res.config.targets {
                let cell = res
                    .cell_in_region(scheme.as_str(), region, cols, rows, n)
                    .expect("campaign contains every (scheme, region, grid, N) cell");
                let mean = cell
                    .metric(metric)
                    .expect("metric is a Metrics field")
                    .summary()
                    .mean();
                series.push(n as f64, mean);
            }
            out.push(series);
        }
    }
    out
}

/// Extension figure `figpmf`: the *distribution* of movement counts, not
/// just the mean — empirical hop frequencies over single replacements on
/// the paper's 4×5 grid with `N = 12`, against Theorem 2's `P(i)`.
pub fn fig_pmf(trials: u64, base_seed: u64) -> Vec<Series> {
    let (l, n) = (L_4X5, 12usize);
    let mut counts = vec![0u64; l + 1];
    for t in 0..trials {
        let hops = crate::sweep::simulate_single_replacement(4, 5, n, base_seed + t) as usize;
        counts[hops.min(l)] += 1;
    }
    let mut empirical = Series::new("simulated frequency");
    for (i, &c) in counts.iter().enumerate().skip(1) {
        empirical.push(i as f64, c as f64 / trials as f64);
    }
    let analytical = Series::from_points(
        "analytical P(i)",
        (1..=l)
            .map(|i| (i as f64, analysis::p_moves(l, n, i)))
            .collect(),
    );
    vec![empirical, analytical]
}

/// Extension figure `figsc`: the paper's future-work short-cut. SR vs
/// SR-SC total node movements (and messages) across the sweep targets —
/// the prediction being that SR-SC "reduce\[s\] the cost of SR greatly in
/// the cases when N < 55".
pub fn fig_shortcut(cfg: &crate::sweep::SweepConfig) -> (Vec<Series>, Vec<Series>) {
    let mut sr_moves = Series::new("SR moves");
    let mut sc_moves = Series::new("SR-SC moves");
    let mut sr_dist = Series::new("SR distance");
    let mut sc_dist = Series::new("SR-SC distance");
    for (i, &t) in cfg.targets.iter().enumerate() {
        for trial in 0..cfg.trials {
            let seed = cfg.base_seed + i as u64 * 10_000 + trial;
            let (sr, sc) = crate::sweep::run_trial_with_shortcut(cfg, t, seed);
            sr_moves.push(t as f64, sr.sr.moves as f64);
            sc_moves.push(t as f64, sc.moves as f64);
            sr_dist.push(t as f64, sr.sr.distance);
            sc_dist.push(t as f64, sc.distance);
        }
    }
    (
        vec![sr_moves.aggregate_mean(), sc_moves.aggregate_mean()],
        vec![sr_dist.aggregate_mean(), sc_dist.aggregate_mean()],
    )
}

/// Renders a figure as an ASCII plot, optionally writing `<id>.txt` and
/// `<id>.csv` under `out_dir`. Returns the plot text.
///
/// # Errors
///
/// Propagates filesystem errors when `out_dir` is given.
pub fn render(
    id: &str,
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
    out_dir: Option<&Path>,
) -> io::Result<String> {
    let text = AsciiPlot::new(title, x_label, y_label).render(series);
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{id}.txt")), &text)?;
        csv::save_series(&dir.join(format!("{id}.csv")), series)?;
    }
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{run_sweep, SweepConfig};

    #[test]
    fn fig3_shapes_match_paper() {
        let (a, b) = fig3();
        // Figure 3(a): starts near (L+1)/2 = 10 at N = 1, falls toward 1.
        let pts = a[0].points();
        assert!((pts[0].1 - 10.0).abs() < 1e-9);
        assert!(pts.last().unwrap().1 < 1.2);
        // The paper's spot value at N = 12.
        let at12 = pts.iter().find(|p| p.0 == 12.0).unwrap().1;
        assert!((at12 - 2.0139).abs() < 2e-3);
        // Figure 3(b): monotone decreasing from 128 toward 1.
        let ptsb = b[0].points();
        assert!((ptsb[0].1 - 128.0).abs() < 1e-9);
        assert!(ptsb.windows(2).all(|w| w[1].1 <= w[0].1 + 1e-12));
    }

    #[test]
    fn fig5_is_fig3_scaled() {
        let (m, _) = fig3();
        let (d, _) = fig5();
        for (pm, pd) in m[0].points().iter().zip(d[0].points()) {
            assert!((pd.1 - 1.08 * 10.0 * pm.1).abs() < 1e-9);
        }
    }

    #[test]
    fn monte_carlo_figures_have_expected_relations() {
        let results = run_sweep(&SweepConfig::quick());
        let f6a = fig6a(&results);
        let f6b = fig6b(&results);
        let f7 = fig7(&results);
        let f8 = fig8(&results);
        // Series order and labels.
        assert_eq!(f6a[0].label(), "AR");
        assert_eq!(f6a[1].label(), "SR");
        assert_eq!(f7[2].label(), "SR analytical");
        // SR initiates fewer processes than AR at every swept N.
        for (ar, sr) in f6a[0].points().iter().zip(f6a[1].points()) {
            assert!(sr.1 <= ar.1, "SR {} vs AR {} at N={}", sr.1, ar.1, sr.0);
        }
        // SR success rate is 100% everywhere; AR's never exceeds it.
        for (ar, sr) in f6b[0].points().iter().zip(f6b[1].points()) {
            assert_eq!(sr.1, 100.0);
            assert!(ar.1 <= 100.0);
        }
        // Moves and distance decrease with N for SR (more spares =>
        // shorter walks).
        let srm = f7[1].points();
        assert!(srm.first().unwrap().1 >= srm.last().unwrap().1);
        // Distance ~ 1.05-1.08 r per move.
        for (m, d) in f7[1].points().iter().zip(f8[1].points()) {
            if m.1 > 0.0 {
                let per_hop = d.1 / m.1 / R_16X16;
                assert!((0.9..=1.2).contains(&per_hop), "per-hop {per_hop}");
            }
        }
    }

    #[test]
    fn analytical_overlay_tracks_experiment() {
        let results = run_sweep(&SweepConfig {
            targets: vec![200, 600],
            trials: 6,
            ..SweepConfig::default()
        });
        let f7 = fig7(&results);
        let (sr, overlay) = (f7[1].points(), f7[2].points());
        for (s, o) in sr.iter().zip(overlay) {
            let rel = (s.1 - o.1).abs() / o.1.max(1.0);
            assert!(
                rel < 0.45,
                "experimental {} vs analytical {} at N={}",
                s.1,
                o.1,
                s.0
            );
        }
    }

    #[test]
    fn pmf_extension_matches_theorem_2_distribution() {
        let series = fig_pmf(400, 1234);
        let empirical = &series[0];
        let analytical = &series[1];
        // Total variation distance between the empirical and analytical
        // PMFs must be small.
        let mut tv = 0.0;
        for (e, a) in empirical.points().iter().zip(analytical.points()) {
            assert_eq!(e.0, a.0);
            tv += (e.1 - a.1).abs();
        }
        tv /= 2.0;
        assert!(tv < 0.12, "total variation distance {tv}");
    }

    #[test]
    fn shortcut_extension_wins_on_moves_everywhere() {
        let cfg = SweepConfig {
            targets: vec![10, 200],
            trials: 2,
            ..SweepConfig::default()
        };
        let (moves, dist) = fig_shortcut(&cfg);
        for (sr, sc) in moves[0].points().iter().zip(moves[1].points()) {
            assert!(
                sc.1 < sr.1,
                "SR-SC must move less: {} vs {} at N={}",
                sc.1,
                sr.1,
                sr.0
            );
        }
        // The win is biggest at low N, as the paper predicts.
        let gain_low = moves[0].points()[0].1 / moves[1].points()[0].1.max(1.0);
        let gain_high = moves[0].points()[1].1 / moves[1].points()[1].1.max(1.0);
        assert!(gain_low > gain_high, "gain {gain_low} vs {gain_high}");
        assert_eq!(dist[0].label(), "SR distance");
    }

    #[test]
    fn campaign_figures_carry_ci_whiskers() {
        use crate::campaign::{run_campaign, CampaignConfig};
        let cfg = CampaignConfig {
            name: "figtest".into(),
            grids: vec![(6, 6)],
            targets: vec![5, 20],
            seeds_per_cell: 4,
            ..CampaignConfig::paper()
        };
        let res = run_campaign(&cfg).unwrap();
        let f6a = fig6a_campaign(&res);
        // 2 schemes × (mean, lo, hi).
        assert_eq!(f6a.len(), 6);
        assert_eq!(f6a[0].label(), "AR");
        assert_eq!(f6a[1].label(), "AR lo95");
        assert_eq!(f6a[2].label(), "AR hi95");
        assert_eq!(f6a[3].label(), "SR");
        // Whiskers bracket the mean at every N.
        for s in [0, 3] {
            for ((m, lo), hi) in f6a[s]
                .points()
                .iter()
                .zip(f6a[s + 1].points())
                .zip(f6a[s + 2].points())
            {
                assert!(lo.1 <= m.1 && m.1 <= hi.1);
            }
        }
        // Figures 7/8 add the analytical overlay as the final series.
        let f7 = fig7_campaign(&res);
        assert_eq!(f7.len(), 7);
        assert_eq!(f7.last().unwrap().label(), "SR analytical");
        let f8 = fig8_campaign(&res);
        let r = cfg.comm_range / 5f64.sqrt();
        for (m, d) in f7
            .last()
            .unwrap()
            .points()
            .iter()
            .zip(f8.last().unwrap().points())
        {
            assert!((d.1 - 1.08 * r * m.1).abs() < 1e-9);
        }
        // Success rate: SR pinned at 100 with zero-width whiskers.
        let f6b = fig6b_campaign(&res);
        for p in f6b[3].points() {
            assert_eq!(p.1, 100.0);
        }
    }

    #[test]
    fn region_series_cover_every_scheme_shape_pair() {
        use crate::campaign::{run_campaign, CampaignConfig};
        let cfg = CampaignConfig {
            seeds_per_cell: 2,
            ..CampaignConfig::masked_smoke()
        };
        let res = run_campaign(&cfg).unwrap();
        let series = campaign_region_series(&res, "moves");
        assert_eq!(series.len(), cfg.schemes.len() * cfg.regions.len());
        assert_eq!(series[0].label(), "AR@l-shape");
        assert_eq!(series[1].label(), "AR@annulus");
        assert!(series.iter().all(|s| s.points().len() == cfg.targets.len()));
        // SR success rate is 100% on every region shape.
        let success = campaign_region_series(&res, "success_rate_percent");
        for s in success.iter().filter(|s| s.label().starts_with("SR@")) {
            for p in s.points() {
                assert_eq!(p.1, 100.0, "{}", s.label());
            }
        }
    }

    #[test]
    fn avail_figures_cover_every_scheme() {
        use crate::campaign::{run_campaign, CampaignConfig};
        use crate::steady::SteadyParams;
        let cfg = CampaignConfig {
            steady: SteadyParams {
                ticks: 12,
                fault_rate: 2.0,
                ..CampaignConfig::avail_smoke().steady
            },
            ..CampaignConfig::avail_smoke()
        };
        let res = run_campaign(&cfg).unwrap();
        // Availability/energy: mean + lo + hi per scheme.
        let avail = figavail_availability(&res);
        assert_eq!(avail.len(), cfg.schemes.len() * 3);
        assert_eq!(avail[0].label(), "AR");
        assert_eq!(avail[1].label(), "AR lo95");
        for s in 0..cfg.schemes.len() {
            for ((m, lo), hi) in avail[3 * s]
                .points()
                .iter()
                .zip(avail[3 * s + 1].points())
                .zip(avail[3 * s + 2].points())
            {
                assert!(lo.1 <= m.1 && m.1 <= hi.1);
                assert!((0.0..=1.0).contains(&m.1));
            }
        }
        let energy = figavail_energy(&res);
        assert_eq!(energy.len(), cfg.schemes.len() * 3);
        assert!(energy[0].points().iter().all(|p| p.1 > 0.0));
        // Hole lifetimes: p50 + p99 per scheme, p50 <= p99.
        let life = figavail_holelife(&res);
        assert_eq!(life.len(), cfg.schemes.len() * 2);
        for s in 0..cfg.schemes.len() {
            assert!(life[2 * s].label().ends_with(" p50"));
            for (p50, p99) in life[2 * s].points().iter().zip(life[2 * s + 1].points()) {
                assert!(p50.1 <= p99.1);
            }
        }
    }

    #[test]
    fn render_writes_files() {
        let dir = std::env::temp_dir().join("wsn_bench_render_test");
        let _ = std::fs::remove_dir_all(&dir);
        let (a, _) = fig3();
        let text = render("fig3a", "Fig 3(a)", "N", "moves", &a, Some(&dir)).unwrap();
        assert!(text.contains("Fig 3(a)"));
        assert!(dir.join("fig3a.txt").exists());
        assert!(dir.join("fig3a.csv").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
