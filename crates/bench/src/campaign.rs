//! The parallel campaign engine: experiment matrices with streaming
//! statistics.
//!
//! [`sweep`](crate::sweep) reproduces the paper's §5 comparison on one
//! grid with a hand-rolled seed loop; a **campaign** generalizes it to a
//! full experiment matrix — scheme × grid size × spare target `N` ×
//! seed — sized for the grids the occupancy engine was built for
//! (256×256+) and for enough seeds per cell that every curve carries a
//! confidence interval. Three properties are load-bearing:
//!
//! * **Lazy expansion.** The matrix is never materialized: a trial is
//!   addressed by a single dense index, decoded on demand into
//!   `(scheme, grid, N, trial)`. A million-trial campaign costs a
//!   counter, not a job vector.
//! * **Deterministic RNG streams.** Trial `(cols, rows, N, t)` draws its
//!   seed from [`wsn_simcore::derive_stream_seed`] — addressed by
//!   coordinates, not by draw order — so any worker may run any trial
//!   and the scheme axis is deliberately excluded from the stream path:
//!   every scheme sees byte-identical deployments, exactly like the
//!   paper's paired comparison. Aggregates are folded **in trial
//!   order** per cell (a small reorder window buffers out-of-order
//!   completions), making campaign output bit-identical for any worker
//!   count — the property `tests/determinism.rs` proves.
//! * **Streaming aggregation.** Trial outcomes fold into per-cell
//!   [`StreamingStat`]s (Welford moments, 95% CI, online histograms for
//!   moves/distance) the moment they complete, so memory is O(matrix
//!   cells), not O(trials).
//!
//! A fourth axis, **region shape** ([`RegionShape`]), sweeps the same
//! matrix over irregular surveillance regions (L-shape, annulus,
//! corridor, random obstacles): each non-full region masks the grid,
//! deployment confines itself to enabled cells, and SR/AR/SR-SC run on
//! the masked replacement structures — `figures --campaign --masked`
//! emits the SR-vs-AR comparison across shapes.
//!
//! Execution uses a work-stealing pool of scoped threads: the trial
//! index space is split into per-worker ranges; a worker that drains its
//! range steals the back half of the largest remaining one. Results
//! export through [`CampaignResult::save`] as
//! `results/campaign_<name>.json` + `.csv`, and
//! [`crate::figures`] regenerates Figures 6–8 with CI whiskers from a
//! campaign via `figures --campaign`.
//!
//! # Example
//!
//! A campaign is a plain config run through [`run_campaign`]; the
//! paper's full matrix is [`CampaignConfig::paper`], and any field can
//! be overridden for custom experiments. The scheme axis is a list of
//! registry ids ([`wsn_coverage::SchemeId`]) — any scheme in the
//! registry, including runtime-registered plugins via
//! [`run_campaign_with`], can join the matrix:
//!
//! ```
//! use wsn_bench::campaign::{run_campaign, CampaignConfig};
//!
//! // The paper's §5 matrix, shrunk to a doctest-sized grid.
//! let cfg = CampaignConfig {
//!     name: "doc".into(),
//!     grids: vec![(6, 6)],
//!     targets: vec![5, 20],
//!     seeds_per_cell: 2,
//!     ..CampaignConfig::paper()
//! };
//! let result = run_campaign(&cfg)?;
//! assert_eq!(result.cells.len(), cfg.cell_count());
//! // Paired deployments: SR and AR saw identical hole counts per cell.
//! let sr = result.cell("sr", 6, 6, 5).unwrap();
//! let ar = result.cell("ar", 6, 6, 5).unwrap();
//! assert_eq!(sr.holes, ar.holes);
//! # Ok::<(), wsn_bench::campaign::CampaignError>(())
//! ```
//!
//! ## RNG stream addressing
//!
//! Per-trial seeds come from [`wsn_simcore::derive_stream_seed`], keyed
//! by matrix *coordinates* rather than draw order, so any worker may run
//! any trial and the result is identical. The scheme axis is excluded
//! from the path — every scheme replays the same deployment — while
//! grid, target, and trial (plus the region, when not
//! [`RegionShape::Full`]) each shift the stream:
//!
//! ```
//! use wsn_simcore::derive_stream_seed;
//!
//! let master = 20_080_617;
//! // Trial 7 of the 16x16 / N=200 cell:
//! let seed = derive_stream_seed(master, &[16, 16, 200, 7]);
//! // Same coordinates, same seed — wherever and whenever it runs.
//! assert_eq!(seed, derive_stream_seed(master, &[16, 16, 200, 7]));
//! // Any coordinate change moves the stream.
//! assert_ne!(seed, derive_stream_seed(master, &[16, 16, 200, 8]));
//! assert_ne!(seed, derive_stream_seed(master, &[16, 16, 100, 7]));
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::steady::{run_steady_trial, SteadyOutcome, SteadyParams, SteadySummary};
use wsn_baselines::builtins;
use wsn_coverage::scheme::{DriveMode, NetworkSpec, ReplacementScheme, SchemeId, SchemeRegistry};
use wsn_grid::{deploy, GridNetwork, GridSystem, RegionMask, RegionShape};
use wsn_simcore::{derive_stream_seed, Metrics, NetModelSpec, ProtocolHealth, SimRng};
use wsn_stats::{Histogram, JsonValue, StreamingStat};

/// Reads an exactly-representable non-negative integer field from a wire
/// object. [`JsonValue`] numbers are `f64`, so anything above 2^53 (or
/// fractional, or negative) is rejected rather than silently rounded —
/// a daemon restoring a checkpointed `master_seed` must get the exact
/// seed back or refuse.
pub(crate) fn wire_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    let n = wire_f64(v, key)?;
    if !(n >= 0.0 && n.fract() == 0.0 && n <= 9_007_199_254_740_992.0) {
        return Err(format!("field '{key}': {n} is not an exact u64"));
    }
    Ok(n as u64)
}

/// [`wire_u64`] narrowed to `usize`.
pub(crate) fn wire_usize(v: &JsonValue, key: &str) -> Result<usize, String> {
    usize::try_from(wire_u64(v, key)?).map_err(|_| format!("field '{key}' overflows usize"))
}

/// Reads a finite `f64` field from a wire object.
pub(crate) fn wire_f64(v: &JsonValue, key: &str) -> Result<f64, String> {
    let n = v
        .get(key)
        .ok_or_else(|| format!("field '{key}' missing"))?
        .as_f64()
        .ok_or_else(|| format!("field '{key}' is not a number"))?;
    if !n.is_finite() {
        return Err(format!("field '{key}' is not finite"));
    }
    Ok(n)
}

/// Reads an array field from a wire object.
fn wire_arr<'v>(v: &'v JsonValue, key: &str) -> Result<&'v [JsonValue], String> {
    v.get(key)
        .ok_or_else(|| format!("field '{key}' missing"))?
        .as_arr()
        .ok_or_else(|| format!("field '{key}' is not an array"))
}

/// [`wire_u64`] for a bare array element (no key to index by).
fn elem_u64(v: &JsonValue, what: &str) -> Result<u64, String> {
    let n = v
        .as_f64()
        .ok_or_else(|| format!("{what} is not a number"))?;
    if !(n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= 9_007_199_254_740_992.0) {
        return Err(format!("{what}: {n} is not an exact u64"));
    }
    Ok(n as u64)
}

/// What one campaign trial measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CampaignMode {
    /// The paper's §5 methodology: `(N + m·n)` nodes dropped uniformly,
    /// the scheme repairs every deployment hole (Figures 6–8).
    FullRecovery,
    /// Theorem 2's exact setting: one node per non-hole cell, exactly
    /// `N` spares, one hole, one replacement (Figures 3/5; SR only).
    SingleReplacement,
    /// The open-system availability workload ([`crate::steady`]): the
    /// §5 deployment evolves under Poisson faults, Poisson arrivals and
    /// recurring jammer weather for [`SteadyParams::ticks`] ticks, the
    /// scheme repairing each tick; trials report SLA availability, hole
    /// lifetimes, MTTR and energy burn (`figavail_*` figures).
    SteadyState,
    /// The degraded-network sweep: the §5 full-recovery workload driven
    /// through the event engine
    /// ([`DriveMode::EventDriven`]) over a latency × loss grid
    /// ([`DegradedParams`]), measuring what the synchronous model
    /// assumes away — duplicate initiations, lost cascades, stalled
    /// repairs (`figdeg_*` figures). The network axes join the matrix
    /// innermost; deployments stay paired across schemes *and* weather.
    Degraded,
}

impl CampaignMode {
    fn json_name(&self) -> &'static str {
        match self {
            CampaignMode::FullRecovery => "full_recovery",
            CampaignMode::SingleReplacement => "single_replacement",
            CampaignMode::SteadyState => "steady_state",
            CampaignMode::Degraded => "degraded",
        }
    }

    fn from_json_name(name: &str) -> Option<CampaignMode> {
        [
            CampaignMode::FullRecovery,
            CampaignMode::SingleReplacement,
            CampaignMode::SteadyState,
            CampaignMode::Degraded,
        ]
        .into_iter()
        .find(|m| m.json_name() == name)
    }
}

/// The network axes of a [`CampaignMode::Degraded`] sweep. Each
/// `(latency, loss)` pair maps to one [`NetModelSpec`]:
/// `(≤1, 0)` → `Ideal`, `(t, 0)` → `FixedLatency`, anything lossy →
/// `Bernoulli`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradedParams {
    /// Delivery latencies in rounds (outer network axis; `1` = the
    /// classic next-round cadence).
    pub latencies: Vec<u32>,
    /// Loss probabilities in parts-per-million (inner network axis; `0`
    /// = lossless).
    pub loss_ppms: Vec<u32>,
}

impl Default for DegradedParams {
    fn default() -> Self {
        DegradedParams {
            latencies: vec![1],
            loss_ppms: vec![0],
        }
    }
}

impl DegradedParams {
    /// Number of `(latency, loss)` combinations in the sweep.
    pub fn combo_count(&self) -> usize {
        self.latencies.len() * self.loss_ppms.len()
    }

    /// The [`NetModelSpec`] of one combination (dense index, losses
    /// innermost).
    pub fn spec(&self, combo: usize) -> NetModelSpec {
        let latency = self.latencies[combo / self.loss_ppms.len()];
        let loss_ppm = self.loss_ppms[combo % self.loss_ppms.len()];
        match (latency, loss_ppm) {
            (0 | 1, 0) => NetModelSpec::Ideal,
            (ticks, 0) => NetModelSpec::FixedLatency { ticks },
            (latency, loss_ppm) => NetModelSpec::Bernoulli { loss_ppm, latency },
        }
    }

    fn validate(&self) -> Result<(), String> {
        if self.latencies.is_empty() || self.loss_ppms.is_empty() {
            return Err("latency and loss axes must be non-empty".into());
        }
        if let Some(l) = self.loss_ppms.iter().find(|&&l| l > 1_000_000) {
            return Err(format!("loss_ppm {l} exceeds 1_000_000 (certain loss)"));
        }
        Ok(())
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            (
                "latencies",
                JsonValue::Arr(
                    self.latencies
                        .iter()
                        .map(|&l| JsonValue::from(l as usize))
                        .collect(),
                ),
            ),
            (
                "loss_ppms",
                JsonValue::Arr(
                    self.loss_ppms
                        .iter()
                        .map(|&l| JsonValue::from(l as usize))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<DegradedParams, String> {
        let axis = |key: &str| -> Result<Vec<u32>, String> {
            wire_arr(v, key)?
                .iter()
                .map(|e| {
                    u32::try_from(elem_u64(e, &format!("'{key}' element"))?)
                        .map_err(|_| format!("'{key}' element overflows u32"))
                })
                .collect()
        };
        Ok(DegradedParams {
            latencies: axis("latencies")?,
            loss_ppms: axis("loss_ppms")?,
        })
    }
}

/// Campaign configuration: the experiment matrix plus execution knobs.
///
/// The matrix is the cartesian product
/// `schemes × regions × grids × targets`, with `seeds_per_cell` trials
/// per cell. `workers` affects wall-clock only — never results — and is
/// therefore excluded from the exported config.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Artifact base name: results land in `campaign_<name>.json`/`.csv`.
    pub name: String,
    /// Registry ids of the schemes to run (figure legend order). Every
    /// id must resolve in the registry the campaign runs against
    /// ([`wsn_baselines::builtins`] for [`run_campaign`]).
    pub schemes: Vec<SchemeId>,
    /// Region shapes to sweep ([`RegionShape::Full`] alone reproduces
    /// the paper's rectangular setting; irregular shapes mask the grid).
    pub regions: Vec<RegionShape>,
    /// Grid dimensions `(cols, rows)` to sweep.
    pub grids: Vec<(u16, u16)>,
    /// Spare targets `N` (the x-axis of Figures 6–8).
    pub targets: Vec<usize>,
    /// Node communication range `R` in meters (`r = R/√5`).
    pub comm_range: f64,
    /// Monte-Carlo trials per matrix cell (≥30 for the paper figures, so
    /// normal-approximation intervals are defensible).
    pub seeds_per_cell: u64,
    /// Master seed every per-trial stream is derived from.
    pub master_seed: u64,
    /// What each trial measures.
    pub mode: CampaignMode,
    /// Open-system workload knobs, read only under
    /// [`CampaignMode::SteadyState`] (and only then exported into the
    /// artifact, so closed-mode artifacts are byte-stable).
    pub steady: SteadyParams,
    /// Degraded-network axes, read only under
    /// [`CampaignMode::Degraded`] (same byte-stability contract as
    /// `steady`).
    pub degraded: DegradedParams,
    /// Confidence level for exported intervals (0.90/0.95/0.99).
    pub ci_level: f64,
    /// Worker-thread override (`None` = available parallelism). Not part
    /// of the exported artifact: results are bit-identical for any value.
    pub workers: Option<usize>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig::paper()
    }
}

impl CampaignConfig {
    /// The paper's §5 matrix with CI-grade statistics: SR vs AR on the
    /// 16×16 grid, the full Figure 6–8 target sweep, 30 seeds per cell.
    pub fn paper() -> CampaignConfig {
        CampaignConfig {
            name: "paper16".into(),
            schemes: SchemeId::list(&["ar", "sr"]),
            regions: vec![RegionShape::Full],
            grids: vec![(16, 16)],
            targets: vec![
                10, 25, 55, 100, 150, 200, 300, 400, 500, 600, 700, 800, 900, 1000,
            ],
            comm_range: 10.0,
            seeds_per_cell: 30,
            master_seed: 20_080_617, // ICDCS 2008 began June 17.
            mode: CampaignMode::FullRecovery,
            steady: SteadyParams::default(),
            degraded: DegradedParams::default(),
            ci_level: 0.95,
            workers: None,
        }
    }

    /// A reduced matrix (4 targets, 10 seeds) for local iteration.
    pub fn quick() -> CampaignConfig {
        CampaignConfig {
            name: "quick16".into(),
            targets: vec![10, 55, 200, 1000],
            seeds_per_cell: 10,
            ..CampaignConfig::paper()
        }
    }

    /// The seconds-long CI smoke matrix: **all five** built-in schemes
    /// on an 8×8 grid, two targets, three seeds. Also the fixture
    /// config of the golden-file test.
    pub fn smoke() -> CampaignConfig {
        CampaignConfig {
            name: "smoke8".into(),
            schemes: SchemeId::list(&["ar", "sr", "sr-sc", "vf", "smart"]),
            grids: vec![(8, 8)],
            targets: vec![10, 100],
            seeds_per_cell: 3,
            ..CampaignConfig::paper()
        }
    }

    /// The irregular-region comparison matrix behind
    /// `figures --campaign --masked`: SR vs AR on a 16×16 grid over all
    /// four irregular shapes, with the full region as the rectangular
    /// reference.
    pub fn masked() -> CampaignConfig {
        CampaignConfig {
            name: "masked16".into(),
            regions: RegionShape::ALL.to_vec(),
            targets: vec![10, 25, 55, 100, 200, 400],
            ..CampaignConfig::paper()
        }
    }

    /// The seconds-long masked smoke matrix: **all five** built-in
    /// schemes on an 8×8 L-shape and annulus. Also the fixture config
    /// of the masked golden-file test.
    pub fn masked_smoke() -> CampaignConfig {
        CampaignConfig {
            name: "masked8".into(),
            schemes: SchemeId::list(&["ar", "sr", "sr-sc", "vf", "smart"]),
            regions: vec![RegionShape::LShape, RegionShape::Annulus],
            grids: vec![(8, 8)],
            targets: vec![10, 100],
            seeds_per_cell: 3,
            ..CampaignConfig::paper()
        }
    }

    /// The steady-state availability matrix behind `figures --avail`:
    /// all five schemes on the 64×64 grid under Poisson faults and
    /// arrivals plus a recurring jammer crossing, two spare budgets.
    pub fn avail() -> CampaignConfig {
        CampaignConfig {
            name: "avail64".into(),
            schemes: SchemeId::list(&["ar", "sr", "sr-sc", "vf", "smart"]),
            grids: vec![(64, 64)],
            targets: vec![128, 512],
            seeds_per_cell: 2,
            mode: CampaignMode::SteadyState,
            steady: SteadyParams {
                ticks: 96,
                fault_rate: 4.0,
                arrival_rate: 4.0,
                jammer_period: 48,
                jammer_radius_cells: 2.5,
                ..SteadyParams::default()
            },
            ..CampaignConfig::paper()
        }
    }

    /// The seconds-long steady-state smoke matrix: all five schemes on
    /// an 8×8 grid, short horizon, gentle rates.
    pub fn avail_smoke() -> CampaignConfig {
        CampaignConfig {
            name: "avail8".into(),
            schemes: SchemeId::list(&["ar", "sr", "sr-sc", "vf", "smart"]),
            grids: vec![(8, 8)],
            targets: vec![10, 40],
            seeds_per_cell: 2,
            mode: CampaignMode::SteadyState,
            steady: SteadyParams {
                ticks: 48,
                jammer_period: 16,
                ..SteadyParams::default()
            },
            ..CampaignConfig::paper()
        }
    }

    /// The degraded-network sweep behind `figures --degraded`: the
    /// event-capable schemes (AR, SR, SR-SC) on the 16×16 grid, driven
    /// through a latency × loss matrix from the classic cadence up to
    /// 4-round latency and 30% loss.
    pub fn degraded() -> CampaignConfig {
        CampaignConfig {
            name: "degraded16".into(),
            schemes: SchemeId::list(&["ar", "sr", "sr-sc"]),
            grids: vec![(16, 16)],
            targets: vec![55, 200],
            seeds_per_cell: 10,
            mode: CampaignMode::Degraded,
            degraded: DegradedParams {
                latencies: vec![1, 2, 4],
                loss_ppms: vec![0, 100_000, 300_000],
            },
            ..CampaignConfig::paper()
        }
    }

    /// The seconds-long degraded smoke matrix: AR, SR and SR-SC on an
    /// 8×8 grid over a 2×2 latency × loss grid. Also the fixture config
    /// of the degraded golden-file test.
    pub fn degraded_smoke() -> CampaignConfig {
        CampaignConfig {
            name: "event_smoke8".into(),
            schemes: SchemeId::list(&["ar", "sr", "sr-sc"]),
            grids: vec![(8, 8)],
            targets: vec![10, 100],
            seeds_per_cell: 3,
            mode: CampaignMode::Degraded,
            degraded: DegradedParams {
                latencies: vec![1, 3],
                loss_ppms: vec![0, 300_000],
            },
            ..CampaignConfig::paper()
        }
    }

    /// Sets the worker-thread count (testing and benchmarking knob).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> CampaignConfig {
        self.workers = Some(workers);
        self
    }

    /// Sets the trials-per-cell count.
    #[must_use]
    pub fn with_seeds_per_cell(mut self, seeds: u64) -> CampaignConfig {
        self.seeds_per_cell = seeds;
        self
    }

    /// Network-model combinations per `(scheme, region, grid, target)`
    /// coordinate: the degraded latency × loss grid, or 1 in every
    /// other mode.
    fn net_combo_count(&self) -> usize {
        if self.mode == CampaignMode::Degraded {
            self.degraded.combo_count()
        } else {
            1
        }
    }

    /// Number of matrix cells.
    pub fn cell_count(&self) -> usize {
        self.schemes.len()
            * self.regions.len()
            * self.grids.len()
            * self.targets.len()
            * self.net_combo_count()
    }

    /// Total trials the campaign will execute.
    pub fn trial_count(&self) -> u64 {
        self.cell_count() as u64 * self.seeds_per_cell
    }

    /// Decodes a dense cell index into `(scheme, region, (cols, rows), n)`
    /// — canonical order: schemes outermost, then regions, grids,
    /// targets, and (degraded mode only) the network combination
    /// innermost ([`CampaignConfig::cell_net`]).
    pub(crate) fn cell_params(&self, cell: usize) -> (&SchemeId, RegionShape, (u16, u16), usize) {
        let nets = self.net_combo_count();
        let per_target = nets;
        let per_grid = self.targets.len() * per_target;
        let per_region = self.grids.len() * per_grid;
        let per_scheme = self.regions.len() * per_region;
        let scheme = &self.schemes[cell / per_scheme];
        let rest = cell % per_scheme;
        let region = self.regions[rest / per_region];
        let rest = rest % per_region;
        let grid = self.grids[rest / per_grid];
        let n = self.targets[(rest % per_grid) / per_target];
        (scheme, region, grid, n)
    }

    /// The network model of a dense cell index —
    /// [`NetModelSpec::Ideal`] outside degraded mode.
    pub(crate) fn cell_net(&self, cell: usize) -> NetModelSpec {
        if self.mode != CampaignMode::Degraded {
            return NetModelSpec::Ideal;
        }
        self.degraded.spec(cell % self.net_combo_count())
    }

    /// Validates the matrix against `registry` — the same gate
    /// [`run_campaign_with`] applies before executing. Public so
    /// front-ends (the `served` daemon's `POST /jobs`) can reject bad
    /// configs at submission time instead of at run time.
    ///
    /// # Errors
    ///
    /// The first [`CampaignError`] the config violates.
    pub fn validate(&self, registry: &SchemeRegistry) -> Result<(), CampaignError> {
        if self.schemes.is_empty()
            || self.regions.is_empty()
            || self.grids.is_empty()
            || self.targets.is_empty()
        {
            return Err(CampaignError::EmptyMatrix);
        }
        for (i, id) in self.schemes.iter().enumerate() {
            if !registry.contains(id.as_str()) {
                return Err(CampaignError::UnknownScheme {
                    id: id.to_string(),
                    registered: registry.ids().iter().map(ToString::to_string).collect(),
                });
            }
            // A repeated id would duplicate whole matrix slabs (same
            // stream seeds, twice the trials, two identical series).
            if self.schemes[..i].contains(id) {
                return Err(CampaignError::DuplicateScheme { id: id.to_string() });
            }
        }
        if self.seeds_per_cell == 0 {
            return Err(CampaignError::ZeroSeeds);
        }
        if self.mode == CampaignMode::SingleReplacement
            && self.schemes.iter().any(|s| s.as_str() != "sr")
        {
            return Err(CampaignError::SingleReplacementNeedsSr);
        }
        if self.mode == CampaignMode::SteadyState {
            self.steady
                .validate()
                .map_err(CampaignError::BadSteadyParams)?;
        }
        if self.mode == CampaignMode::Degraded {
            self.degraded
                .validate()
                .map_err(CampaignError::BadDegradedParams)?;
            for id in &self.schemes {
                let scheme = registry.get(id.as_str()).expect("ids checked above");
                if !scheme.supports_event_driven() {
                    return Err(CampaignError::SchemeNotEventDriven { id: id.to_string() });
                }
            }
        }
        let supported = [0.90, 0.95, 0.99];
        if !supported.iter().any(|l| (l - self.ci_level).abs() < 1e-9) {
            return Err(CampaignError::UnsupportedCiLevel(self.ci_level));
        }
        if !(self.comm_range.is_finite() && self.comm_range > 0.0) {
            return Err(CampaignError::BadCommRange(self.comm_range));
        }
        // Establish every per-trial precondition here, so trial execution
        // cannot fail (or panic on a worker thread) for a validated
        // matrix: every scheme must support every (region, grid) of the
        // matrix.
        let invalid =
            |(cols, rows), reason: String| CampaignError::InvalidGrid { cols, rows, reason };
        for &grid in &self.grids {
            let (cols, rows) = grid;
            if let Err(e) = GridSystem::for_comm_range(cols, rows, self.comm_range) {
                return Err(invalid(grid, e.to_string()));
            }
            for &region in &self.regions {
                let mask = region.build_mask(cols, rows);
                if mask.enabled_count() == 0 {
                    return Err(invalid(grid, format!("region '{region}' enables no cells")));
                }
                let spec = NetworkSpec::masked(mask);
                for id in &self.schemes {
                    let scheme = registry.get(id.as_str()).expect("ids checked above");
                    if let Err(e) = scheme.supports(&spec) {
                        return Err(invalid(grid, format!("region '{region}': {e}")));
                    }
                }
            }
        }
        Ok(())
    }

    /// JSON view of the matrix definition — the `wsn-campaign/3` wire
    /// form [`CampaignConfig::from_json`] parses back. Deliberately
    /// excludes `workers`: the artifact must be bit-identical however
    /// the campaign was scheduled.
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("name", JsonValue::from(self.name.as_str())),
            ("mode", JsonValue::from(self.mode.json_name())),
            (
                "schemes",
                JsonValue::Arr(
                    self.schemes
                        .iter()
                        .map(|s| JsonValue::from(s.as_str()))
                        .collect(),
                ),
            ),
            (
                "regions",
                JsonValue::Arr(
                    self.regions
                        .iter()
                        .map(|r| JsonValue::from(r.label()))
                        .collect(),
                ),
            ),
            (
                "grids",
                JsonValue::Arr(
                    self.grids
                        .iter()
                        .map(|&(c, r)| {
                            JsonValue::Arr(vec![
                                JsonValue::from(usize::from(c)),
                                JsonValue::from(usize::from(r)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "targets",
                JsonValue::Arr(self.targets.iter().map(|&t| JsonValue::from(t)).collect()),
            ),
            ("comm_range", JsonValue::from(self.comm_range)),
            ("seeds_per_cell", JsonValue::from(self.seeds_per_cell)),
            ("master_seed", JsonValue::from(self.master_seed)),
            ("ci_level", JsonValue::from(self.ci_level)),
        ];
        // Only steady-state artifacts carry the workload block: closed
        // campaign artifacts (including the checked-in golden files)
        // stay byte-identical.
        if self.mode == CampaignMode::SteadyState {
            fields.push(("steady", self.steady.to_json()));
        }
        if self.mode == CampaignMode::Degraded {
            fields.push(("degraded", self.degraded.to_json()));
        }
        JsonValue::obj(fields)
    }

    /// Parses the [`CampaignConfig::to_json`] wire form — the `config`
    /// block of a `wsn-campaign/3` artifact, or the body of a job
    /// submitted to the `served` daemon — back into a config.
    ///
    /// `workers` is never on the wire, so it comes back `None`
    /// (available parallelism); the `steady`/`degraded` blocks default
    /// when absent, mirroring how [`CampaignConfig::to_json`] omits
    /// them outside their modes. Shape errors (missing fields, wrong
    /// types, inexact integers) are reported here; *range* errors stay
    /// with [`CampaignConfig::validate`], which callers still run.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn from_json(v: &JsonValue) -> Result<CampaignConfig, String> {
        let str_field = |key: &str| -> Result<&str, String> {
            v.get(key)
                .ok_or_else(|| format!("field '{key}' missing"))?
                .as_str()
                .ok_or_else(|| format!("field '{key}' is not a string"))
        };
        let name = str_field("name")?.to_owned();
        let mode_name = str_field("mode")?;
        let mode = CampaignMode::from_json_name(mode_name)
            .ok_or_else(|| format!("unknown campaign mode '{mode_name}'"))?;
        let schemes = wire_arr(v, "schemes")?
            .iter()
            .map(|e| {
                let id = e.as_str().ok_or("'schemes' element is not a string")?;
                SchemeId::new(id).map_err(|e| e.to_string())
            })
            .collect::<Result<Vec<SchemeId>, String>>()?;
        let regions = wire_arr(v, "regions")?
            .iter()
            .map(|e| {
                let label = e.as_str().ok_or("'regions' element is not a string")?;
                RegionShape::from_label(label)
                    .ok_or_else(|| format!("unknown region shape '{label}'"))
            })
            .collect::<Result<Vec<RegionShape>, String>>()?;
        let grids = wire_arr(v, "grids")?
            .iter()
            .map(|e| {
                let pair = e.as_arr().ok_or("'grids' element is not an array")?;
                if pair.len() != 2 {
                    return Err(format!(
                        "'grids' element has {} entries, want [cols, rows]",
                        pair.len()
                    ));
                }
                let dim = |which: usize, what: &str| -> Result<u16, String> {
                    u16::try_from(elem_u64(&pair[which], what)?)
                        .map_err(|_| format!("{what} overflows u16"))
                };
                Ok((dim(0, "grid cols")?, dim(1, "grid rows")?))
            })
            .collect::<Result<Vec<(u16, u16)>, String>>()?;
        let targets = wire_arr(v, "targets")?
            .iter()
            .map(|e| {
                usize::try_from(elem_u64(e, "'targets' element")?)
                    .map_err(|_| "'targets' element overflows usize".to_owned())
            })
            .collect::<Result<Vec<usize>, String>>()?;
        let steady = match v.get("steady") {
            Some(s) => SteadyParams::from_json(s)?,
            None => SteadyParams::default(),
        };
        let degraded = match v.get("degraded") {
            Some(d) => DegradedParams::from_json(d)?,
            None => DegradedParams::default(),
        };
        Ok(CampaignConfig {
            name,
            schemes,
            regions,
            grids,
            targets,
            comm_range: wire_f64(v, "comm_range")?,
            seeds_per_cell: wire_u64(v, "seeds_per_cell")?,
            master_seed: wire_u64(v, "master_seed")?,
            mode,
            steady,
            degraded,
            ci_level: wire_f64(v, "ci_level")?,
            workers: None,
        })
    }

    /// [`CampaignConfig::from_json`] over raw JSON text (a `served` job
    /// body, a config file).
    ///
    /// # Errors
    ///
    /// Returns the JSON parse error or the first malformed field.
    pub fn from_json_str(text: &str) -> Result<CampaignConfig, String> {
        let v = JsonValue::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        CampaignConfig::from_json(&v)
    }
}

/// Campaign configuration errors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CampaignError {
    /// Schemes, grids or targets is empty.
    EmptyMatrix,
    /// A scheme id does not resolve in the registry the campaign runs
    /// against.
    UnknownScheme {
        /// The unresolved id.
        id: String,
        /// Every id the registry knows.
        registered: Vec<String>,
    },
    /// A scheme id appears more than once in the scheme axis (which
    /// would duplicate trials and artifact series).
    DuplicateScheme {
        /// The repeated id.
        id: String,
    },
    /// `seeds_per_cell` must be at least 1.
    ZeroSeeds,
    /// [`CampaignMode::SingleReplacement`] measures Theorem 2's SR
    /// setting; other schemes have no closed form to validate.
    SingleReplacementNeedsSr,
    /// The [`SteadyParams`] of a steady-state campaign are out of range.
    BadSteadyParams(String),
    /// The [`DegradedParams`] of a degraded campaign are out of range.
    BadDegradedParams(String),
    /// A scheme in a degraded campaign has no event-driven path
    /// ([`ReplacementScheme::supports_event_driven`] is false).
    SchemeNotEventDriven {
        /// The scheme without an event-driven driver.
        id: String,
    },
    /// `ci_level` must be 0.90, 0.95 or 0.99.
    UnsupportedCiLevel(f64),
    /// `comm_range` must be finite and positive.
    BadCommRange(f64),
    /// A resume checkpoint does not belong to the campaign being run
    /// (different config wire form, or inconsistent cell/watermark
    /// shape). Resuming it would silently produce a franken-artifact,
    /// so the engine refuses.
    CheckpointMismatch(String),
    /// A grid in the matrix cannot run the configured schemes (invalid
    /// dimensions, no Hamilton structure for SR, or no single cycle for
    /// SR-SC).
    InvalidGrid {
        /// Offending grid columns.
        cols: u16,
        /// Offending grid rows.
        rows: u16,
        /// What the grid fails to support.
        reason: String,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::EmptyMatrix => write!(f, "campaign matrix has an empty axis"),
            CampaignError::UnknownScheme { id, registered } => write!(
                f,
                "unknown scheme id '{id}'; registered ids: {}",
                registered.join(", ")
            ),
            CampaignError::DuplicateScheme { id } => {
                write!(f, "scheme id '{id}' appears more than once in the matrix")
            }
            CampaignError::ZeroSeeds => write!(f, "seeds_per_cell must be at least 1"),
            CampaignError::SingleReplacementNeedsSr => {
                write!(
                    f,
                    "single-replacement campaigns support only the 'sr' scheme"
                )
            }
            CampaignError::BadSteadyParams(reason) => {
                write!(f, "invalid steady-state parameters: {reason}")
            }
            CampaignError::BadDegradedParams(reason) => {
                write!(f, "invalid degraded-network parameters: {reason}")
            }
            CampaignError::SchemeNotEventDriven { id } => {
                write!(
                    f,
                    "scheme '{id}' has no event-driven driver; degraded campaigns \
                     need one for every scheme"
                )
            }
            CampaignError::UnsupportedCiLevel(l) => {
                write!(f, "unsupported ci_level {l}; use 0.90/0.95/0.99")
            }
            CampaignError::BadCommRange(r) => {
                write!(f, "comm_range must be finite and positive, got {r}")
            }
            CampaignError::CheckpointMismatch(reason) => {
                write!(f, "checkpoint does not match this campaign: {reason}")
            }
            CampaignError::InvalidGrid { cols, rows, reason } => {
                write!(f, "grid {cols}x{rows} cannot run this matrix: {reason}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// What one trial observed (the unit that folds into a cell aggregate).
#[derive(Debug, Clone, PartialEq)]
struct TrialOutcome {
    holes: usize,
    spares: usize,
    covered: bool,
    metrics: Metrics,
    /// Present only under [`CampaignMode::SteadyState`].
    steady: Option<SteadyOutcome>,
    /// Present only under [`CampaignMode::Degraded`].
    health: Option<ProtocolHealth>,
}

/// Streaming aggregate of the [`ProtocolHealth`] ledger, one accumulator
/// per counter (degraded-mode cells only).
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSummary {
    /// Inter-cell messages handed to the network, per trial.
    pub messages_sent: StreamingStat,
    /// Messages the network dropped, per trial.
    pub messages_dropped: StreamingStat,
    /// Repairs initiated for holes already owned by a live (but
    /// unobservable) process, per trial.
    pub duplicate_initiations: StreamingStat,
    /// Cascade notifications lost in transit, per trial.
    pub lost_cascades: StreamingStat,
    /// Processes stranded in flight when the run ended, per trial.
    pub stalled_repairs: StreamingStat,
    /// Processes terminated because a duplicate beat them to the hole,
    /// per trial.
    pub superseded_repairs: StreamingStat,
}

impl HealthSummary {
    fn new() -> HealthSummary {
        HealthSummary {
            messages_sent: StreamingStat::new(),
            messages_dropped: StreamingStat::new(),
            duplicate_initiations: StreamingStat::new(),
            lost_cascades: StreamingStat::new(),
            stalled_repairs: StreamingStat::new(),
            superseded_repairs: StreamingStat::new(),
        }
    }

    fn push(&mut self, h: &ProtocolHealth) {
        self.messages_sent.push(h.messages_sent as f64);
        self.messages_dropped.push(h.messages_dropped as f64);
        self.duplicate_initiations
            .push(h.duplicate_initiations as f64);
        self.lost_cascades.push(h.lost_cascades as f64);
        self.stalled_repairs.push(h.stalled_repairs as f64);
        self.superseded_repairs.push(h.superseded_repairs as f64);
    }

    fn to_json(&self, ci_level: f64) -> JsonValue {
        JsonValue::obj([
            ("messages_sent", self.messages_sent.to_json(ci_level)),
            ("messages_dropped", self.messages_dropped.to_json(ci_level)),
            (
                "duplicate_initiations",
                self.duplicate_initiations.to_json(ci_level),
            ),
            ("lost_cascades", self.lost_cascades.to_json(ci_level)),
            ("stalled_repairs", self.stalled_repairs.to_json(ci_level)),
            (
                "superseded_repairs",
                self.superseded_repairs.to_json(ci_level),
            ),
        ])
    }

    /// One `(name, accumulator)` view over the six counters — the single
    /// place their checkpoint order is defined.
    fn stats(&self) -> [(&'static str, &StreamingStat); 6] {
        [
            ("messages_sent", &self.messages_sent),
            ("messages_dropped", &self.messages_dropped),
            ("duplicate_initiations", &self.duplicate_initiations),
            ("lost_cascades", &self.lost_cascades),
            ("stalled_repairs", &self.stalled_repairs),
            ("superseded_repairs", &self.superseded_repairs),
        ]
    }

    fn to_state_json(&self) -> JsonValue {
        JsonValue::Obj(
            self.stats()
                .into_iter()
                .map(|(name, stat)| (name.to_owned(), stat.to_state_json()))
                .collect(),
        )
    }

    fn from_state_json(v: &JsonValue) -> Result<HealthSummary, String> {
        let stat = |key: &str| -> Result<StreamingStat, String> {
            StreamingStat::from_state_json(
                v.get(key)
                    .ok_or_else(|| format!("health state field '{key}' missing"))?,
            )
        };
        Ok(HealthSummary {
            messages_sent: stat("messages_sent")?,
            messages_dropped: stat("messages_dropped")?,
            duplicate_initiations: stat("duplicate_initiations")?,
            lost_cascades: stat("lost_cascades")?,
            stalled_repairs: stat("stalled_repairs")?,
            superseded_repairs: stat("superseded_repairs")?,
        })
    }
}

/// Streaming aggregate of one matrix cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellStats {
    /// The cell's scheme id (the registry key; also the artifact token).
    pub scheme: SchemeId,
    /// The scheme's figure-legend label, resolved from the registry at
    /// campaign start (e.g. `"SR-SC"` for id `sr-sc`).
    pub label: String,
    /// The cell's region shape.
    pub region: RegionShape,
    /// Grid columns.
    pub cols: u16,
    /// Grid rows.
    pub rows: u16,
    /// The cell's spare target `N`.
    pub n_target: usize,
    /// Trials folded so far.
    pub trials: u64,
    /// Trials that ended fully covered.
    pub covered_trials: u64,
    /// Deployment holes per trial.
    pub holes: StreamingStat,
    /// Deployment spares per trial.
    pub spares: StreamingStat,
    /// One accumulator per [`Metrics::FIELD_NAMES`] entry; `moves` and
    /// `distance` carry online histograms (32 bins, tails clamped).
    metrics: Vec<StreamingStat>,
    /// Steady-state SLA aggregate, present only under
    /// [`CampaignMode::SteadyState`].
    pub steady: Option<SteadySummary>,
    /// The cell's network model, present only under
    /// [`CampaignMode::Degraded`].
    pub net: Option<NetModelSpec>,
    /// Distributed-health aggregate, present only under
    /// [`CampaignMode::Degraded`].
    pub health: Option<HealthSummary>,
}

impl CellStats {
    fn new(
        scheme: SchemeId,
        label: String,
        region: RegionShape,
        (cols, rows): (u16, u16),
        n_target: usize,
        net: Option<NetModelSpec>,
        cfg: &CampaignConfig,
    ) -> CellStats {
        // Histogram ranges scale with the population the trials can
        // actually touch: the enabled cells of the region.
        let cells = region.build_mask(cols, rows).enabled_count();
        let side = cfg.comm_range / 5f64.sqrt();
        let metrics = Metrics::FIELD_NAMES
            .iter()
            .map(|&name| match name {
                "moves" => StreamingStat::with_histogram(
                    Histogram::new(0.0, (8 * cells) as f64, 32).expect("positive range"),
                ),
                "distance" => StreamingStat::with_histogram(
                    Histogram::new(0.0, (8 * cells) as f64 * 2.0 * side, 32)
                        .expect("positive range"),
                ),
                _ => StreamingStat::new(),
            })
            .collect();
        CellStats {
            scheme,
            label,
            region,
            cols,
            rows,
            n_target,
            trials: 0,
            covered_trials: 0,
            holes: StreamingStat::new(),
            spares: StreamingStat::new(),
            metrics,
            steady: (cfg.mode == CampaignMode::SteadyState)
                .then(|| SteadySummary::new(&cfg.steady)),
            net,
            health: (cfg.mode == CampaignMode::Degraded).then(HealthSummary::new),
        }
    }

    fn push(&mut self, t: &TrialOutcome) {
        self.trials += 1;
        self.covered_trials += u64::from(t.covered);
        self.holes.push(t.holes as f64);
        self.spares.push(t.spares as f64);
        for (stat, value) in self.metrics.iter_mut().zip(t.metrics.field_values()) {
            stat.push(value);
        }
        if let (Some(summary), Some(outcome)) = (self.steady.as_mut(), t.steady.as_ref()) {
            summary.push(outcome);
        }
        if let (Some(summary), Some(h)) = (self.health.as_mut(), t.health.as_ref()) {
            summary.push(h);
        }
    }

    /// The accumulator for one [`Metrics::FIELD_NAMES`] observable.
    pub fn metric(&self, name: &str) -> Option<&StreamingStat> {
        Metrics::FIELD_NAMES
            .iter()
            .position(|&f| f == name)
            .map(|i| &self.metrics[i])
    }

    /// Serializes the cell's mutable *state* — fold counters and every
    /// accumulator register — for campaign checkpoints. The identity
    /// fields (scheme, region, grid, target, net) are not on this wire:
    /// they re-derive from the config and the cell's dense index, so a
    /// checkpoint cannot describe a cell its config does not.
    pub fn to_state_json(&self) -> JsonValue {
        let metric_fields: Vec<(String, JsonValue)> = Metrics::FIELD_NAMES
            .iter()
            .zip(&self.metrics)
            .map(|(&name, stat)| (name.to_owned(), stat.to_state_json()))
            .collect();
        let mut fields = vec![
            ("trials", JsonValue::from(self.trials)),
            ("covered_trials", JsonValue::from(self.covered_trials)),
            ("holes", self.holes.to_state_json()),
            ("spares", self.spares.to_state_json()),
            ("metrics", JsonValue::Obj(metric_fields)),
        ];
        if let Some(summary) = &self.steady {
            fields.push(("steady", summary.to_state_json()));
        }
        if let Some(summary) = &self.health {
            fields.push(("health", summary.to_state_json()));
        }
        JsonValue::obj(fields)
    }

    /// Restores a [`CellStats::to_state_json`] state into this freshly
    /// built cell (identity fields already set by [`CellStats::new`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field,
    /// including a steady/health block that disagrees with the cell's
    /// mode.
    fn apply_state_json(&mut self, v: &JsonValue) -> Result<(), String> {
        self.trials = wire_u64(v, "trials")?;
        self.covered_trials = wire_u64(v, "covered_trials")?;
        self.holes =
            StreamingStat::from_state_json(v.get("holes").ok_or("cell field 'holes' missing")?)?;
        self.spares =
            StreamingStat::from_state_json(v.get("spares").ok_or("cell field 'spares' missing")?)?;
        let metrics = v.get("metrics").ok_or("cell field 'metrics' missing")?;
        self.metrics = Metrics::FIELD_NAMES
            .iter()
            .map(|&name| {
                StreamingStat::from_state_json(
                    metrics
                        .get(name)
                        .ok_or_else(|| format!("cell metric '{name}' missing"))?,
                )
            })
            .collect::<Result<Vec<StreamingStat>, String>>()?;
        match (&mut self.steady, v.get("steady")) {
            (Some(_), Some(s)) => self.steady = Some(SteadySummary::from_state_json(s)?),
            (None, None) => {}
            (Some(_), None) => return Err("steady-state cell lacks a 'steady' block".into()),
            (None, Some(_)) => return Err("non-steady cell carries a 'steady' block".into()),
        }
        match (&mut self.health, v.get("health")) {
            (Some(_), Some(h)) => self.health = Some(HealthSummary::from_state_json(h)?),
            (None, None) => {}
            (Some(_), None) => return Err("degraded cell lacks a 'health' block".into()),
            (None, Some(_)) => return Err("non-degraded cell carries a 'health' block".into()),
        }
        Ok(())
    }

    fn to_json(&self, ci_level: f64) -> JsonValue {
        let metric_fields: Vec<(String, JsonValue)> = Metrics::FIELD_NAMES
            .iter()
            .zip(&self.metrics)
            .map(|(&name, stat)| (name.to_owned(), stat.to_json(ci_level)))
            .collect();
        let mut fields = vec![
            ("scheme", JsonValue::from(self.scheme.as_str())),
            ("region", JsonValue::from(self.region.label())),
            ("cols", JsonValue::from(usize::from(self.cols))),
            ("rows", JsonValue::from(usize::from(self.rows))),
            ("n_target", JsonValue::from(self.n_target)),
            ("trials", JsonValue::from(self.trials)),
            ("covered_trials", JsonValue::from(self.covered_trials)),
            ("holes", self.holes.to_json(ci_level)),
            ("spares", self.spares.to_json(ci_level)),
            ("metrics", JsonValue::Obj(metric_fields)),
        ];
        if let Some(summary) = &self.steady {
            fields.push(("steady", summary.to_json(ci_level)));
        }
        if let Some(spec) = &self.net {
            fields.push(("net", JsonValue::from(spec.token().as_str())));
        }
        if let Some(summary) = &self.health {
            fields.push(("health", summary.to_json(ci_level)));
        }
        JsonValue::obj(fields)
    }
}

/// A completed campaign: the config echo plus one aggregate per cell, in
/// canonical matrix order.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// The matrix that was run.
    pub config: CampaignConfig,
    /// Per-cell aggregates (schemes outermost, targets innermost).
    pub cells: Vec<CellStats>,
}

impl CampaignResult {
    /// Looks up one cell's aggregate by scheme id, ignoring the region
    /// axis (the first region in matrix order wins — unambiguous for
    /// single-region campaigns; multi-region campaigns use
    /// [`CampaignResult::cell_in_region`]).
    pub fn cell(&self, scheme: &str, cols: u16, rows: u16, n_target: usize) -> Option<&CellStats> {
        self.cells.iter().find(|c| {
            c.scheme.as_str() == scheme
                && c.cols == cols
                && c.rows == rows
                && c.n_target == n_target
        })
    }

    /// Looks up a degraded-mode cell by scheme, target and network
    /// model (the first matching region/grid in matrix order wins).
    pub fn cell_with_net(
        &self,
        scheme: &str,
        n_target: usize,
        net: NetModelSpec,
    ) -> Option<&CellStats> {
        self.cells
            .iter()
            .find(|c| c.scheme.as_str() == scheme && c.n_target == n_target && c.net == Some(net))
    }

    /// Looks up one cell's aggregate on the full four-axis key.
    pub fn cell_in_region(
        &self,
        scheme: &str,
        region: RegionShape,
        cols: u16,
        rows: u16,
        n_target: usize,
    ) -> Option<&CellStats> {
        self.cells.iter().find(|c| {
            c.scheme.as_str() == scheme
                && c.region == region
                && c.cols == cols
                && c.rows == rows
                && c.n_target == n_target
        })
    }

    /// Serializes the campaign artifact. Schema `wsn-campaign/3`
    /// (`/2`'s shape with registry *ids* — lowercase tokens like
    /// `"sr-sc"` — in the scheme axis and cells, opening the axis to
    /// every registered scheme): `{schema, config, cells[]}` with fixed
    /// key order and shortest round-trip float formatting, so identical
    /// campaigns render byte-identical text regardless of worker count.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("schema", JsonValue::from("wsn-campaign/3")),
            ("config", self.config.to_json()),
            (
                "cells",
                JsonValue::Arr(
                    self.cells
                        .iter()
                        .map(|c| c.to_json(self.config.ci_level))
                        .collect(),
                ),
            ),
        ])
    }

    /// Serializes the headline per-cell statistics as wide CSV (one row
    /// per cell; mean and CI bounds for the Figure 6–8 metrics).
    pub fn to_csv(&self) -> String {
        let level = self.config.ci_level;
        let mut header: Vec<String> = [
            "scheme",
            "region",
            "cols",
            "rows",
            "n_target",
            "trials",
            "covered_trials",
            "holes_mean",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let headline = [
            "moves",
            "distance",
            "processes_initiated",
            "success_rate_percent",
        ];
        for m in headline {
            header.push(format!("{m}_mean"));
            header.push(format!("{m}_ci_low"));
            header.push(format!("{m}_ci_high"));
        }
        let steady_mode = self.config.mode == CampaignMode::SteadyState;
        if steady_mode {
            for col in [
                "availability_mean",
                "availability_ci_low",
                "availability_ci_high",
                "hole_lifetime_p50",
                "hole_lifetime_p99",
                "hole_lifetime_p999",
                "mttr_mean",
                "energy_rate_mean",
            ] {
                header.push(col.to_owned());
            }
        }
        let degraded_mode = self.config.mode == CampaignMode::Degraded;
        if degraded_mode {
            for col in [
                "net",
                "messages_dropped_mean",
                "duplicate_initiations_mean",
                "lost_cascades_mean",
                "stalled_repairs_mean",
            ] {
                header.push(col.to_owned());
            }
        }
        let mut rows: Vec<Vec<String>> = vec![header];
        for c in &self.cells {
            let mut row = vec![
                c.scheme.to_string(),
                c.region.label().to_owned(),
                c.cols.to_string(),
                c.rows.to_string(),
                c.n_target.to_string(),
                c.trials.to_string(),
                c.covered_trials.to_string(),
                c.holes.summary().mean().to_string(),
            ];
            for m in headline {
                let ci = c.metric(m).expect("headline metrics exist").ci(level);
                row.push(ci.mean.to_string());
                row.push(ci.low().to_string());
                row.push(ci.high().to_string());
            }
            if steady_mode {
                let s = c.steady.as_ref().expect("steady cells carry a summary");
                let avail = s.availability.ci(level);
                row.push(avail.mean.to_string());
                row.push(avail.low().to_string());
                row.push(avail.high().to_string());
                for p in [50.0, 99.0, 99.9] {
                    row.push(
                        s.lifetime_percentile(p)
                            .map(|v| v.to_string())
                            .unwrap_or_default(),
                    );
                }
                row.push(s.mttr.summary().mean().to_string());
                row.push(s.energy_rate.summary().mean().to_string());
            }
            if degraded_mode {
                let spec = c.net.as_ref().expect("degraded cells carry a net model");
                let h = c.health.as_ref().expect("degraded cells carry health");
                row.push(spec.token());
                row.push(h.messages_dropped.summary().mean().to_string());
                row.push(h.duplicate_initiations.summary().mean().to_string());
                row.push(h.lost_cascades.summary().mean().to_string());
                row.push(h.stalled_repairs.summary().mean().to_string());
            }
            rows.push(row);
        }
        let mut buf = Vec::new();
        wsn_stats::csv::write_rows(&mut buf, &rows).expect("writing to a Vec cannot fail");
        String::from_utf8(buf).expect("CSV is UTF-8")
    }

    /// Writes `campaign_<name>.json` and `campaign_<name>.csv` under
    /// `dir`, returning both paths.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, dir: &Path) -> io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let json_path = dir.join(format!("campaign_{}.json", self.config.name));
        let csv_path = dir.join(format!("campaign_{}.csv", self.config.name));
        std::fs::write(&json_path, self.to_json().to_file_string())?;
        std::fs::write(&csv_path, self.to_csv())?;
        Ok((json_path, csv_path))
    }
}

/// Runs one trial, addressed purely by matrix coordinates (any worker,
/// any order — same outcome).
/// The deterministic stream seed of a matrix trial — the address half of
/// the record/replay contract ([`crate::replay`] re-derives the identical
/// seed from a coordinate alone).
///
/// The scheme is deliberately not part of the stream path: every scheme
/// replays the identical deployment (the paper's paired methodology).
/// Full-region trials keep the original (pre-region) path so existing
/// campaign artifacts replay byte-identically; irregular regions extend
/// the path with their stable stream id.
pub(crate) fn trial_stream_seed(
    master_seed: u64,
    region: RegionShape,
    (cols, rows): (u16, u16),
    n_target: usize,
    trial: u64,
) -> u64 {
    if region == RegionShape::Full {
        derive_stream_seed(
            master_seed,
            &[u64::from(cols), u64::from(rows), n_target as u64, trial],
        )
    } else {
        derive_stream_seed(
            master_seed,
            &[
                u64::from(cols),
                u64::from(rows),
                region.stream_id(),
                n_target as u64,
                trial,
            ],
        )
    }
}

/// Generates the deployment positions of a matrix trial from its stream
/// seed — the generation half of [`build_trial_network`], shared with
/// the per-worker [`TrialArena`] so arena-reset trials draw the
/// byte-identical RNG stream as freshly built ones.
pub(crate) fn trial_positions(
    mode: CampaignMode,
    sys: &GridSystem,
    mask: &RegionMask,
    n_target: usize,
    seed: u64,
) -> Vec<wsn_geometry::Point2> {
    let mut rng = SimRng::seed_from_u64(seed);
    match mode {
        // Steady state and the degraded sweep open from the same §5
        // deployment the closed full-recovery trials use (degraded
        // differs only in the drive, never the deployment — paired
        // across weather conditions by construction).
        CampaignMode::FullRecovery | CampaignMode::SteadyState | CampaignMode::Degraded => {
            // §5: "(N + m x n) enabled nodes", uniform — with m·n read
            // as the enabled-cell count of the region.
            deploy::uniform_masked(sys, mask, n_target + mask.enabled_count(), &mut rng)
        }
        CampaignMode::SingleReplacement => {
            // Theorem 2's setting: one hole, one node everywhere else,
            // exactly N spares over the occupied (enabled) cells.
            let enabled: Vec<_> = mask.iter_enabled().collect();
            let hole = enabled[rng.range_usize(enabled.len())];
            let mut pos = deploy::with_holes_masked(sys, mask, &[hole], 1, &mut rng);
            let occupied: Vec<_> = enabled.into_iter().filter(|c| *c != hole).collect();
            for _ in 0..n_target {
                let cell = occupied[rng.range_usize(occupied.len())];
                let rect = sys.cell_rect(cell).expect("in bounds");
                pos.push(wsn_geometry::sample::point_in_rect(
                    &rect,
                    rng.uniform_f64(),
                    rng.uniform_f64(),
                ));
            }
            pos
        }
    }
}

/// Builds the deployment of a matrix trial from its stream seed — the
/// re-execution half of the record/replay contract: one function, used
/// by both the campaign workers and the [`crate::replay`] recorder, so a
/// recorded coordinate always reproduces the byte-identical network.
pub(crate) fn build_trial_network(
    mode: CampaignMode,
    comm_range: f64,
    region: RegionShape,
    (cols, rows): (u16, u16),
    n_target: usize,
    seed: u64,
) -> GridNetwork {
    let sys = GridSystem::for_comm_range(cols, rows, comm_range)
        .expect("campaign grid dimensions are valid");
    let mask = region.build_mask(cols, rows);
    let positions = trial_positions(mode, &sys, &mask, n_target, seed);
    GridNetwork::with_mask(sys, mask, &positions).expect("masked generator respects the mask")
}

/// Per-worker trial arena: one cached [`GridNetwork`] rebuilt in place
/// via [`GridNetwork::reset_into`] while consecutive trials share a
/// `(region, grid)` key, so the node vector, member pool, occupancy
/// words and head table are allocated once per worker instead of once
/// per trial. Trials on a new key rebuild the cache from scratch;
/// either way the network handed out is observation-equivalent to
/// [`build_trial_network`]'s (the `reset_into` proptest pins equality).
pub(crate) struct TrialArena {
    key: Option<(RegionShape, u16, u16)>,
    net: Option<GridNetwork>,
}

impl TrialArena {
    pub(crate) fn new() -> TrialArena {
        TrialArena {
            key: None,
            net: None,
        }
    }

    /// The trial network for the given matrix coordinates, reusing the
    /// cached allocations whenever the `(region, grid)` key matches.
    pub(crate) fn network(
        &mut self,
        mode: CampaignMode,
        comm_range: f64,
        region: RegionShape,
        (cols, rows): (u16, u16),
        n_target: usize,
        seed: u64,
    ) -> &mut GridNetwork {
        let reusable = self.key == Some((region, cols, rows)) && self.net.is_some();
        if reusable {
            let net = self.net.as_mut().expect("key implies cached network");
            let positions = trial_positions(mode, net.system(), net.mask(), n_target, seed);
            net.reset_into(&positions)
                .expect("masked generator respects the mask");
        } else {
            self.net = Some(build_trial_network(
                mode,
                comm_range,
                region,
                (cols, rows),
                n_target,
                seed,
            ));
            self.key = Some((region, cols, rows));
        }
        self.net.as_mut().expect("cached or just built")
    }
}

fn run_matrix_trial(
    cfg: &CampaignConfig,
    scheme: &dyn ReplacementScheme,
    arena: &mut TrialArena,
    (region, (cols, rows), n_target, net_spec): (RegionShape, (u16, u16), usize, NetModelSpec),
    trial: u64,
) -> TrialOutcome {
    // The network axes are deliberately absent from the stream seed:
    // every weather condition (and every scheme) replays the identical
    // deployment — the paired methodology, extended to the link layer.
    let seed = trial_stream_seed(cfg.master_seed, region, (cols, rows), n_target, trial);
    let net = arena.network(
        cfg.mode,
        cfg.comm_range,
        region,
        (cols, rows),
        n_target,
        seed,
    );
    let stats = net.stats();
    if cfg.mode == CampaignMode::SteadyState {
        // Open-system workload: the scheme repairs every tick while
        // faults, arrivals and weather evolve the deployment.
        let outcome = run_steady_trial(&cfg.steady, scheme, net, seed);
        return TrialOutcome {
            holes: stats.vacant,
            spares: stats.spares,
            covered: net.vacant_count() == 0,
            metrics: outcome.metrics,
            steady: Some(outcome),
            health: None,
        };
    }
    let degraded = cfg.mode == CampaignMode::Degraded;
    let drive = if degraded {
        DriveMode::EventDriven { net: net_spec }
    } else {
        DriveMode::Classic
    };
    // One uniform dispatch for every scheme in the registry — this is
    // the line the closed `match scheme` used to be.
    let report = scheme
        .run(net, seed, drive)
        .expect("validation proved every scheme supports every matrix cell");
    TrialOutcome {
        holes: stats.vacant,
        spares: stats.spares,
        covered: report.fully_covered,
        metrics: report.metrics,
        steady: None,
        health: degraded.then_some(report.health),
    }
}

/// Work-stealing deque over the dense trial index space: each worker
/// owns a contiguous range; an empty worker steals the back half of the
/// largest remaining range. Index *assignment* is scheduling-dependent,
/// which is fine — aggregation reorders per cell (see [`Folder`]).
struct WorkQueue {
    ranges: Vec<Mutex<(u64, u64)>>,
}

impl WorkQueue {
    fn new(total: u64, workers: usize) -> WorkQueue {
        let workers = workers.max(1) as u64;
        let chunk = total.div_ceil(workers);
        let ranges = (0..workers)
            .map(|w| {
                let start = (w * chunk).min(total);
                let end = ((w + 1) * chunk).min(total);
                Mutex::new((start, end))
            })
            .collect();
        WorkQueue { ranges }
    }

    fn pop(&self, me: usize) -> Option<u64> {
        {
            let mut own = self.ranges[me].lock().expect("queue lock");
            if own.0 < own.1 {
                let i = own.0;
                own.0 += 1;
                return Some(i);
            }
        }
        // Steal: take the back half of the largest remaining range.
        loop {
            let mut best: Option<(usize, u64)> = None;
            for (j, m) in self.ranges.iter().enumerate() {
                if j == me {
                    continue;
                }
                let r = m.lock().expect("queue lock");
                let len = r.1 - r.0;
                if len > 0 && best.is_none_or(|(_, l)| len > l) {
                    best = Some((j, len));
                }
            }
            let (victim, _) = best?;
            let (start, end) = {
                let mut v = self.ranges[victim].lock().expect("queue lock");
                let len = v.1 - v.0;
                if len == 0 {
                    continue; // raced with another thief; rescan
                }
                let mid = v.1 - len.div_ceil(2);
                let stolen = (mid, v.1);
                v.1 = mid;
                stolen
            };
            let mut own = self.ranges[me].lock().expect("queue lock");
            *own = (start, end);
            let i = own.0;
            own.0 += 1;
            return Some(i);
        }
    }
}

/// In-order folder: completed trials enter per-cell reorder buffers and
/// are folded into the cell aggregate strictly in trial order, so the
/// aggregate (and therefore the exported JSON) is bit-identical for any
/// worker count. The buffer holds only out-of-order completions — in
/// practice a handful of trials, never the campaign.
struct Folder {
    cells: Vec<CellStats>,
    next_trial: Vec<u64>,
    pending: Vec<BTreeMap<u64, TrialOutcome>>,
}

impl Folder {
    fn new(cfg: &CampaignConfig, registry: &SchemeRegistry) -> Folder {
        let cells: Vec<CellStats> = (0..cfg.cell_count())
            .map(|c| {
                let (scheme, region, grid, n) = cfg.cell_params(c);
                let net = (cfg.mode == CampaignMode::Degraded).then(|| cfg.cell_net(c));
                let label = registry
                    .get(scheme.as_str())
                    .expect("validated ids")
                    .label()
                    .to_owned();
                CellStats::new(scheme.clone(), label, region, grid, n, net, cfg)
            })
            .collect();
        let n = cells.len();
        Folder {
            cells,
            next_trial: vec![0; n],
            pending: vec![BTreeMap::new(); n],
        }
    }

    /// Restores a folder from a checkpoint: cells and watermarks come
    /// back, the reorder buffers start empty (outcomes beyond a cell's
    /// watermark were deliberately dropped at checkpoint time — they
    /// re-run on resume, and coordinate-addressed RNG streams make the
    /// re-run byte-identical).
    fn from_checkpoint(start: CampaignCheckpoint) -> Folder {
        let n = start.cells.len();
        Folder {
            cells: start.cells,
            next_trial: start.done,
            pending: vec![BTreeMap::new(); n],
        }
    }

    fn fold(
        &mut self,
        trial_index: u64,
        seeds_per_cell: u64,
        outcome: TrialOutcome,
        observer: &dyn CampaignObserver,
    ) {
        let cell = (trial_index / seeds_per_cell) as usize;
        let trial = trial_index % seeds_per_cell;
        self.pending[cell].insert(trial, outcome);
        while let Some(o) = self.pending[cell].remove(&self.next_trial[cell]) {
            self.cells[cell].push(&o);
            self.next_trial[cell] += 1;
            observer.trial_folded(cell, self.next_trial[cell], &self.cells[cell]);
        }
    }
}

/// Progress and cancellation hooks for campaign execution.
///
/// [`CampaignObserver::trial_folded`] fires once per trial, *in each
/// cell's trial order*, under the folder lock — so every observer sees
/// the one canonical fold sequence regardless of worker count or
/// scheduling. That ordering is what lets the `served` daemon stream
/// per-cell deltas to any number of subscribers and promise them all
/// the same sequence. Keep the callback cheap: it runs on the fold
/// critical path.
///
/// [`CampaignObserver::cancel_requested`] is polled by every worker
/// between trials. Returning `true` drains the run: in-flight trials
/// finish and fold, queued ones are abandoned, and the engine returns
/// [`CampaignRun::Interrupted`] with a resumable checkpoint.
pub trait CampaignObserver: Sync {
    /// One trial folded into `stats` (the cell's aggregate after the
    /// fold); `done` is the cell's new in-order watermark.
    fn trial_folded(&self, cell: usize, done: u64, stats: &CellStats) {
        let _ = (cell, done, stats);
    }

    /// Whether the run should wind down at the next safe point.
    fn cancel_requested(&self) -> bool {
        false
    }
}

/// The no-op observer: no progress reporting, never cancels.
impl CampaignObserver for () {}

/// An observer that cancels once a global trial budget is reached —
/// the test harness for interruption, and the building block daemons
/// compose with shutdown flags.
#[derive(Debug)]
pub struct CancelAfter {
    budget: std::sync::atomic::AtomicU64,
}

impl CancelAfter {
    /// Cancels after `trials` folds have been observed.
    pub fn new(trials: u64) -> CancelAfter {
        CancelAfter {
            budget: std::sync::atomic::AtomicU64::new(trials),
        }
    }
}

impl CampaignObserver for CancelAfter {
    fn trial_folded(&self, _cell: usize, _done: u64, _stats: &CellStats) {
        // Saturating: the budget may already be 0 when late folds land.
        self.budget
            .fetch_update(
                std::sync::atomic::Ordering::SeqCst,
                std::sync::atomic::Ordering::SeqCst,
                |b| Some(b.saturating_sub(1)),
            )
            .expect("fetch_update closure never returns None");
    }

    fn cancel_requested(&self) -> bool {
        self.budget.load(std::sync::atomic::Ordering::SeqCst) == 0
    }
}

/// A resumable snapshot of a partially executed campaign: the config
/// echo, each cell's in-order fold watermark, and each cell's
/// accumulator state at that watermark.
///
/// The contract: running the same config from a checkpoint produces the
/// byte-identical final artifact the uninterrupted run would have —
/// per-trial RNG streams are coordinate-addressed and cells fold
/// strictly in trial order, so "skip everything below the watermark,
/// run the rest" reconstructs the exact fold sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCheckpoint {
    /// The campaign the snapshot belongs to (`workers` not preserved —
    /// it never affects results).
    pub config: CampaignConfig,
    /// Per-cell count of trials already folded, in dense cell order.
    pub done: Vec<u64>,
    /// Per-cell aggregates at the watermark, in dense cell order.
    pub cells: Vec<CellStats>,
}

impl CampaignCheckpoint {
    /// Trials already folded, across all cells.
    pub fn trials_done(&self) -> u64 {
        self.done.iter().sum()
    }

    /// Whether every trial has folded (the checkpoint of a finished
    /// campaign — resuming it returns immediately).
    pub fn is_complete(&self) -> bool {
        self.done.iter().all(|&d| d == self.config.seeds_per_cell)
    }

    /// Serializes the checkpoint (schema `wsn-checkpoint/1`): the
    /// `wsn-campaign/3` config block plus per-cell watermarks and
    /// accumulator states, fixed key order throughout.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("schema", JsonValue::from("wsn-checkpoint/1")),
            ("config", self.config.to_json()),
            (
                "done",
                JsonValue::Arr(self.done.iter().map(|&d| JsonValue::from(d)).collect()),
            ),
            (
                "cells",
                JsonValue::Arr(self.cells.iter().map(CellStats::to_state_json).collect()),
            ),
        ])
    }

    /// Parses a [`CampaignCheckpoint::to_json`] snapshot against the
    /// built-in scheme registry.
    ///
    /// # Errors
    ///
    /// As [`CampaignCheckpoint::from_json_with`].
    pub fn from_json(v: &JsonValue) -> Result<CampaignCheckpoint, String> {
        CampaignCheckpoint::from_json_with(v, &builtins())
    }

    /// Parses a [`CampaignCheckpoint::to_json`] snapshot, resolving
    /// scheme labels (and validating the embedded config) against
    /// `registry`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem: wrong
    /// schema tag, malformed config, axis/cell count disagreement,
    /// watermark past `seeds_per_cell`, or accumulator state that does
    /// not fit the config's mode.
    pub fn from_json_with(
        v: &JsonValue,
        registry: &SchemeRegistry,
    ) -> Result<CampaignCheckpoint, String> {
        match v.get("schema").and_then(JsonValue::as_str) {
            Some("wsn-checkpoint/1") => {}
            Some(other) => return Err(format!("unsupported checkpoint schema '{other}'")),
            None => return Err("checkpoint lacks a 'schema' tag".into()),
        }
        let config =
            CampaignConfig::from_json(v.get("config").ok_or("checkpoint lacks a 'config' block")?)?;
        config.validate(registry).map_err(|e| e.to_string())?;
        let done = wire_arr(v, "done")?
            .iter()
            .map(|d| elem_u64(d, "'done' element"))
            .collect::<Result<Vec<u64>, String>>()?;
        let cell_states = wire_arr(v, "cells")?;
        if done.len() != config.cell_count() || cell_states.len() != config.cell_count() {
            return Err(format!(
                "checkpoint shape mismatch: config has {} cells, snapshot has {} watermarks and {} cell states",
                config.cell_count(),
                done.len(),
                cell_states.len()
            ));
        }
        let mut cells = Vec::with_capacity(cell_states.len());
        for (i, state) in cell_states.iter().enumerate() {
            let (scheme, region, grid, n) = config.cell_params(i);
            let net = (config.mode == CampaignMode::Degraded).then(|| config.cell_net(i));
            let label = registry
                .get(scheme.as_str())
                .expect("config validated above")
                .label()
                .to_owned();
            let mut cell = CellStats::new(scheme.clone(), label, region, grid, n, net, &config);
            cell.apply_state_json(state)
                .map_err(|e| format!("cell {i}: {e}"))?;
            if cell.trials != done[i] {
                return Err(format!(
                    "cell {i}: watermark says {} trials folded but the aggregate counted {}",
                    done[i], cell.trials
                ));
            }
            if done[i] > config.seeds_per_cell {
                return Err(format!(
                    "cell {i}: watermark {} exceeds seeds_per_cell {}",
                    done[i], config.seeds_per_cell
                ));
            }
            cells.push(cell);
        }
        Ok(CampaignCheckpoint {
            config,
            done,
            cells,
        })
    }

    /// [`CampaignCheckpoint::from_json`] over raw JSON text.
    ///
    /// # Errors
    ///
    /// Returns the JSON parse error or the first structural problem.
    pub fn from_json_str(text: &str) -> Result<CampaignCheckpoint, String> {
        let v = JsonValue::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        CampaignCheckpoint::from_json(&v)
    }
}

/// How a resumable campaign run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignRun {
    /// Every trial folded; the artifact is final.
    Complete(CampaignResult),
    /// The observer cancelled mid-matrix; the checkpoint resumes the
    /// run with no recomputation below each cell's watermark.
    Interrupted(CampaignCheckpoint),
}

/// Expands and executes the campaign matrix against the built-in scheme
/// registry ([`wsn_baselines::builtins`]) on a work-stealing pool of
/// scoped threads, streaming trial outcomes into per-cell aggregates.
///
/// # Errors
///
/// Returns a [`CampaignError`] for empty/invalid configurations; trial
/// execution itself cannot fail for valid matrices.
pub fn run_campaign(cfg: &CampaignConfig) -> Result<CampaignResult, CampaignError> {
    run_campaign_with(cfg, &builtins())
}

/// Like [`run_campaign`], but against a caller-supplied registry — the
/// hook that lets runtime-registered plugin schemes join the matrix.
///
/// # Errors
///
/// As [`run_campaign`], plus [`CampaignError::UnknownScheme`] for ids
/// the registry cannot resolve.
pub fn run_campaign_with(
    cfg: &CampaignConfig,
    registry: &SchemeRegistry,
) -> Result<CampaignResult, CampaignError> {
    match run_campaign_resumable_with(cfg, registry, None, &())? {
        CampaignRun::Complete(result) => Ok(result),
        CampaignRun::Interrupted(_) => unreachable!("the no-op observer never cancels"),
    }
}

/// [`run_campaign_resumable_with`] against the built-in registry.
///
/// # Errors
///
/// As [`run_campaign_resumable_with`].
pub fn run_campaign_resumable(
    cfg: &CampaignConfig,
    start: Option<CampaignCheckpoint>,
    observer: &dyn CampaignObserver,
) -> Result<CampaignRun, CampaignError> {
    run_campaign_resumable_with(cfg, &builtins(), start, observer)
}

/// The resumable campaign engine behind [`run_campaign`] and the
/// `served` daemon: executes the matrix from scratch or from a
/// [`CampaignCheckpoint`], reporting every fold to `observer` and
/// winding down (with a fresh checkpoint) when the observer cancels.
///
/// Trials below a resumed cell's watermark are skipped without
/// recomputation; everything else runs exactly as a fresh campaign
/// would, so the completed artifact is byte-identical whether the run
/// was interrupted zero or many times, at any worker count.
///
/// # Errors
///
/// As [`run_campaign_with`], plus [`CampaignError::CheckpointMismatch`]
/// when `start` snapshots a different campaign (config wire forms must
/// match exactly) or is internally inconsistent.
pub fn run_campaign_resumable_with(
    cfg: &CampaignConfig,
    registry: &SchemeRegistry,
    start: Option<CampaignCheckpoint>,
    observer: &dyn CampaignObserver,
) -> Result<CampaignRun, CampaignError> {
    cfg.validate(registry)?;
    let folder = match start {
        Some(checkpoint) => {
            // Wire-form equality: `workers` is excluded on both sides,
            // everything that affects results must agree byte for byte.
            if checkpoint.config.to_json().to_string() != cfg.to_json().to_string() {
                return Err(CampaignError::CheckpointMismatch(
                    "the checkpoint's config block differs from the campaign's".into(),
                ));
            }
            let cell_count = cfg.cell_count();
            if checkpoint.done.len() != cell_count || checkpoint.cells.len() != cell_count {
                return Err(CampaignError::CheckpointMismatch(format!(
                    "config has {cell_count} cells, checkpoint has {} watermarks and {} cell states",
                    checkpoint.done.len(),
                    checkpoint.cells.len()
                )));
            }
            if let Some(over) = checkpoint.done.iter().find(|&&d| d > cfg.seeds_per_cell) {
                return Err(CampaignError::CheckpointMismatch(format!(
                    "watermark {over} exceeds seeds_per_cell {}",
                    cfg.seeds_per_cell
                )));
            }
            Folder::from_checkpoint(checkpoint)
        }
        None => Folder::new(cfg, registry),
    };
    // The immutable skip map: trials below these watermarks already
    // folded. Workers must consult this frozen copy, never the live
    // `next_trial` (which advances as they fold).
    let done0 = folder.next_trial.clone();
    let total = cfg.trial_count();
    let workers = cfg
        .workers
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
        .clamp(1, 256)
        .min(total.max(1) as usize);
    let queue = WorkQueue::new(total, workers);
    let folder = Mutex::new(folder);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let queue = &queue;
            let folder = &folder;
            let done0 = &done0;
            scope.spawn(move || {
                // One arena per worker: network allocations are reused
                // across every trial the worker runs on the same
                // (region, grid) key.
                let mut arena = TrialArena::new();
                while let Some(idx) = queue.pop(w) {
                    let cell = (idx / cfg.seeds_per_cell) as usize;
                    let trial = idx % cfg.seeds_per_cell;
                    if trial < done0[cell] {
                        continue; // folded before the checkpoint
                    }
                    if observer.cancel_requested() {
                        break;
                    }
                    let (scheme, region, grid, n) = cfg.cell_params(cell);
                    let net_spec = cfg.cell_net(cell);
                    let scheme = registry.get(scheme.as_str()).expect("validated ids");
                    let outcome = run_matrix_trial(
                        cfg,
                        scheme,
                        &mut arena,
                        (region, grid, n, net_spec),
                        trial,
                    );
                    folder.lock().expect("no poisoned folds").fold(
                        idx,
                        cfg.seeds_per_cell,
                        outcome,
                        observer,
                    );
                }
            });
        }
    });
    let folder = folder.into_inner().expect("scope joined");
    if folder.next_trial.iter().all(|&t| t == cfg.seeds_per_cell) {
        debug_assert!(folder.pending.iter().all(BTreeMap::is_empty));
        return Ok(CampaignRun::Complete(CampaignResult {
            config: cfg.clone(),
            cells: folder.cells,
        }));
    }
    // Interrupted: keep each cell's in-order prefix, drop out-of-order
    // completions beyond the watermark (they re-run on resume — their
    // coordinate-addressed streams make the re-run identical).
    Ok(CampaignRun::Interrupted(CampaignCheckpoint {
        config: cfg.clone(),
        done: folder.next_trial,
        cells: folder.cells,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CampaignConfig {
        CampaignConfig {
            name: "tiny".into(),
            grids: vec![(6, 6)],
            targets: vec![5, 20],
            seeds_per_cell: 2,
            ..CampaignConfig::paper()
        }
    }

    fn id(s: &str) -> SchemeId {
        SchemeId::new(s).unwrap()
    }

    #[test]
    fn matrix_decoding_is_canonical() {
        let full = RegionShape::Full;
        let cfg = CampaignConfig {
            schemes: SchemeId::list(&["ar", "sr"]),
            grids: vec![(8, 8), (16, 16)],
            targets: vec![10, 100],
            ..CampaignConfig::paper()
        };
        assert_eq!(cfg.cell_count(), 8);
        assert_eq!(cfg.cell_params(0), (&id("ar"), full, (8, 8), 10));
        assert_eq!(cfg.cell_params(1), (&id("ar"), full, (8, 8), 100));
        assert_eq!(cfg.cell_params(2), (&id("ar"), full, (16, 16), 10));
        assert_eq!(cfg.cell_params(4), (&id("sr"), full, (8, 8), 10));
        assert_eq!(cfg.cell_params(7), (&id("sr"), full, (16, 16), 100));
    }

    #[test]
    fn region_axis_decodes_between_schemes_and_grids() {
        let cfg = CampaignConfig {
            schemes: SchemeId::list(&["ar", "sr"]),
            regions: vec![RegionShape::Full, RegionShape::LShape],
            grids: vec![(8, 8)],
            targets: vec![10, 100],
            ..CampaignConfig::paper()
        };
        assert_eq!(cfg.cell_count(), 8);
        assert_eq!(
            cfg.cell_params(0),
            (&id("ar"), RegionShape::Full, (8, 8), 10)
        );
        assert_eq!(
            cfg.cell_params(2),
            (&id("ar"), RegionShape::LShape, (8, 8), 10)
        );
        assert_eq!(
            cfg.cell_params(5),
            (&id("sr"), RegionShape::Full, (8, 8), 100)
        );
        assert_eq!(
            cfg.cell_params(7),
            (&id("sr"), RegionShape::LShape, (8, 8), 100)
        );
    }

    #[test]
    fn masked_campaign_runs_all_schemes_to_aggregates() {
        let cfg = CampaignConfig {
            seeds_per_cell: 2,
            ..CampaignConfig::masked_smoke()
        };
        let result = run_campaign(&cfg).unwrap();
        assert_eq!(result.cells.len(), cfg.cell_count());
        for cell in &result.cells {
            assert_eq!(cell.trials, 2, "{}/{}", cell.scheme, cell.region);
        }
        // SR fully covers every masked full-recovery trial; the masked
        // ring preserves Theorem 1 on irregular regions.
        for &region in &cfg.regions {
            for &n in &cfg.targets {
                let sr = result.cell_in_region("sr", region, 8, 8, n).unwrap();
                assert_eq!(sr.covered_trials, sr.trials, "{region} N={n}");
                // Paired deployments hold per region too — across all
                // five schemes, not just SR vs AR.
                for other in ["ar", "sr-sc", "vf", "smart"] {
                    let cell = result.cell_in_region(other, region, 8, 8, n).unwrap();
                    assert_eq!(sr.holes, cell.holes, "{other} {region} N={n}");
                }
            }
        }
        // The artifact carries the region axis and scheme ids.
        let json = result.to_json().to_string();
        assert!(json.starts_with("{\"schema\":\"wsn-campaign/3\""));
        assert!(json.contains("\"schemes\":[\"ar\",\"sr\",\"sr-sc\",\"vf\",\"smart\"]"));
        assert!(json.contains("\"regions\":[\"l-shape\",\"annulus\"]"));
        assert!(json.contains("\"region\":\"l-shape\""));
        assert!(json.contains("\"scheme\":\"sr-sc\""));
        let csv = result.to_csv();
        assert!(csv.starts_with("scheme,region,"));
        assert!(csv.contains("\nsmart,"));
    }

    #[test]
    fn validation_rejects_bad_matrices() {
        let mut cfg = tiny();
        cfg.schemes.clear();
        assert_eq!(run_campaign(&cfg).unwrap_err(), CampaignError::EmptyMatrix);
        let mut cfg = tiny();
        cfg.schemes.push(id("no-such-scheme"));
        let err = run_campaign(&cfg).unwrap_err();
        assert!(matches!(err, CampaignError::UnknownScheme { .. }));
        // The error lists every registered id, for CLI hand-holding.
        let msg = err.to_string();
        for known in ["sr", "sr-sc", "ar", "vf", "smart"] {
            assert!(msg.contains(known), "{msg}");
        }
        let cfg = tiny().with_seeds_per_cell(0);
        assert_eq!(run_campaign(&cfg).unwrap_err(), CampaignError::ZeroSeeds);
        let mut cfg = tiny();
        cfg.mode = CampaignMode::SingleReplacement;
        assert_eq!(
            run_campaign(&cfg).unwrap_err(),
            CampaignError::SingleReplacementNeedsSr
        );
        let mut cfg = tiny();
        cfg.ci_level = 0.5;
        assert!(matches!(
            run_campaign(&cfg).unwrap_err(),
            CampaignError::UnsupportedCiLevel(_)
        ));
        assert!(!CampaignError::EmptyMatrix.to_string().is_empty());
    }

    #[test]
    fn validation_rejects_duplicate_scheme_ids() {
        // A repeated id would double whole matrix slabs with identical
        // stream seeds — reject it instead of silently duplicating.
        let mut cfg = tiny();
        cfg.schemes = vec![id("sr"), id("ar"), id("sr")];
        assert_eq!(
            run_campaign(&cfg).unwrap_err(),
            CampaignError::DuplicateScheme { id: "sr".into() }
        );
    }

    #[test]
    fn validation_catches_config_invalid_schemes_up_front() {
        // A scheme whose *config* (not region) is unusable must fail
        // validation, not panic a worker thread mid-campaign: config
        // validity is part of the supports() contract.
        use wsn_coverage::{Sr, SrConfig};
        let mut registry = SchemeRegistry::new();
        registry
            .register(Sr::from_config(SrConfig::default().with_max_rounds(0)))
            .unwrap();
        let mut cfg = tiny();
        cfg.schemes = SchemeId::list(&["sr"]);
        let err = run_campaign_with(&cfg, &registry).unwrap_err();
        assert!(
            matches!(err, CampaignError::InvalidGrid { .. }),
            "expected up-front rejection, got {err:?}"
        );
        assert!(err.to_string().contains("max_rounds"), "{err}");
    }

    #[test]
    fn validation_establishes_per_trial_preconditions() {
        // Bad communication range fails up front, not on a worker.
        let mut cfg = tiny();
        cfg.comm_range = 0.0;
        assert_eq!(
            run_campaign(&cfg).unwrap_err(),
            CampaignError::BadCommRange(0.0)
        );
        // SR needs a Hamilton structure; 1xN grids have none.
        let mut cfg = tiny();
        cfg.grids = vec![(1, 4)];
        assert!(matches!(
            run_campaign(&cfg).unwrap_err(),
            CampaignError::InvalidGrid {
                cols: 1,
                rows: 4,
                ..
            }
        ));
        // SR-SC needs a single cycle; odd x odd grids only have the
        // dual-path structure.
        let mut cfg = tiny();
        cfg.schemes = SchemeId::list(&["sr-sc"]);
        cfg.grids = vec![(5, 5)];
        let err = run_campaign(&cfg).unwrap_err();
        assert!(matches!(
            err,
            CampaignError::InvalidGrid {
                cols: 5,
                rows: 5,
                ..
            }
        ));
        assert!(err.to_string().contains("single Hamilton cycle"));
        // ...and runs fine on an even-sided grid.
        let mut cfg = tiny();
        cfg.schemes = SchemeId::list(&["sr-sc"]);
        cfg.seeds_per_cell = 1;
        let result = run_campaign(&cfg).unwrap();
        assert_eq!(result.cells.len(), 2);
        assert!(result.cells.iter().all(|c| c.trials == 1));
    }

    #[test]
    fn campaign_runs_and_aggregates_every_cell() {
        let result = run_campaign(&tiny()).unwrap();
        assert_eq!(result.cells.len(), 4);
        for cell in &result.cells {
            assert_eq!(cell.trials, 2);
            assert_eq!(cell.metric("moves").unwrap().summary().count(), 2);
            assert!(cell.metric("unknown").is_none());
        }
        // SR fully covers every 6x6 full-recovery trial.
        for &n in &[5usize, 20] {
            let sr = result.cell("sr", 6, 6, n).unwrap();
            assert_eq!(sr.covered_trials, sr.trials);
            assert_eq!(
                sr.metric("success_rate_percent").unwrap().summary().mean(),
                100.0
            );
            assert_eq!(sr.label, "SR");
        }
        // Paired deployments: SR and AR cells saw identical hole counts.
        for &n in &[5usize, 20] {
            let sr = result.cell("sr", 6, 6, n).unwrap();
            let ar = result.cell("ar", 6, 6, n).unwrap();
            assert_eq!(sr.holes, ar.holes, "N={n}");
            assert_eq!(sr.spares, ar.spares, "N={n}");
        }
    }

    #[test]
    fn worker_count_does_not_change_the_artifact() {
        let base = run_campaign(&tiny().with_workers(1)).unwrap();
        let parallel = run_campaign(&tiny().with_workers(7)).unwrap();
        assert_eq!(base.to_json().to_string(), parallel.to_json().to_string());
        assert_eq!(base.to_csv(), parallel.to_csv());
    }

    fn steady_tiny() -> CampaignConfig {
        CampaignConfig {
            name: "steady-tiny".into(),
            steady: crate::steady::SteadyParams {
                ticks: 12,
                fault_rate: 2.0,
                ..CampaignConfig::avail_smoke().steady
            },
            targets: vec![10, 40],
            ..CampaignConfig::avail_smoke()
        }
    }

    #[test]
    fn steady_campaign_runs_all_five_schemes() {
        let result = run_campaign(&steady_tiny()).unwrap();
        assert_eq!(result.cells.len(), 10);
        for cell in &result.cells {
            assert_eq!(cell.trials, 2, "{}", cell.scheme);
            let s = cell.steady.as_ref().expect("steady mode fills summaries");
            assert_eq!(s.availability.summary().count(), 2);
            assert!(
                s.failures > 0,
                "{}: poisson faults must strike",
                cell.scheme
            );
            // `rounds` is accumulated across ticks, not maxed per run.
            assert!(cell.metric("rounds").unwrap().summary().mean() >= 12.0);
        }
        // Paired processes: every scheme saw the same initial deployment
        // and the same arrival counts (fault kill counts may diverge
        // once repairs shift occupancy).
        for &n in &[10usize, 40] {
            let sr = result.cell("sr", 8, 8, n).unwrap();
            for other in ["ar", "sr-sc", "vf", "smart"] {
                let cell = result.cell(other, 8, 8, n).unwrap();
                assert_eq!(sr.holes, cell.holes, "{other} N={n}");
                assert_eq!(
                    sr.steady.as_ref().unwrap().arrivals,
                    cell.steady.as_ref().unwrap().arrivals,
                    "{other} N={n}"
                );
            }
        }
        // The artifact carries the workload config and the per-cell SLA
        // block; closed-mode artifacts carry neither.
        let json = result.to_json().to_string();
        assert!(json.contains("\"mode\":\"steady_state\""));
        assert!(json.contains("\"steady\":{\"ticks\":12"));
        assert!(json.contains("\"availability\""));
        assert!(json.contains("\"hole_lifetime_p999\""));
        let csv = result.to_csv();
        assert!(csv.lines().next().unwrap().contains("availability_mean"));
        let closed = run_campaign(&tiny()).unwrap();
        let closed_json = closed.to_json().to_string();
        assert!(!closed_json.contains("\"steady\""));
        assert!(!closed.to_csv().contains("availability_mean"));
    }

    #[test]
    fn steady_artifact_is_worker_count_invariant() {
        let base = run_campaign(&steady_tiny().with_workers(1)).unwrap();
        for workers in [2, 8] {
            let parallel = run_campaign(&steady_tiny().with_workers(workers)).unwrap();
            assert_eq!(
                base.to_json().to_string(),
                parallel.to_json().to_string(),
                "workers={workers}"
            );
            assert_eq!(base.to_csv(), parallel.to_csv(), "workers={workers}");
        }
    }

    #[test]
    fn steady_validation_checks_workload_params() {
        let mut cfg = steady_tiny();
        cfg.steady.ticks = 0;
        let err = run_campaign(&cfg).unwrap_err();
        assert!(matches!(err, CampaignError::BadSteadyParams(_)));
        assert!(err.to_string().contains("ticks"), "{err}");
        // Closed modes never read (or reject) the steady knobs.
        let mut cfg = tiny();
        cfg.steady.ticks = 0;
        assert!(run_campaign(&cfg).is_ok());
    }

    #[test]
    fn single_replacement_mode_measures_one_process() {
        let cfg = CampaignConfig {
            name: "single6".into(),
            schemes: SchemeId::list(&["sr"]),
            grids: vec![(6, 6)],
            targets: vec![8],
            seeds_per_cell: 5,
            mode: CampaignMode::SingleReplacement,
            ..CampaignConfig::paper()
        };
        let result = run_campaign(&cfg).unwrap();
        let cell = &result.cells[0];
        assert_eq!(cell.covered_trials, cell.trials);
        assert_eq!(cell.holes.summary().mean(), 1.0);
        assert_eq!(cell.spares.summary().mean(), 8.0);
        assert_eq!(
            cell.metric("processes_initiated").unwrap().summary().mean(),
            1.0
        );
        assert!(cell.metric("moves").unwrap().summary().mean() >= 1.0);
    }

    #[test]
    fn json_and_csv_are_well_formed() {
        let result = run_campaign(&tiny()).unwrap();
        let json = result.to_json().to_string();
        assert!(json.starts_with("{\"schema\":\"wsn-campaign/3\""));
        assert!(json.contains("\"config\""));
        assert!(json.contains("\"cells\""));
        assert!(json.contains("\"histogram\""));
        // Worker override must not leak into the artifact.
        assert!(!json.contains("workers"));
        let csv = result.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("scheme,region,cols,rows,n_target"));
        assert!(header.contains("moves_ci_low"));
        assert_eq!(csv.lines().count(), 1 + result.cells.len());
    }

    #[test]
    fn save_writes_both_artifacts() {
        let dir = std::env::temp_dir().join("wsn_campaign_save_test");
        let _ = std::fs::remove_dir_all(&dir);
        let result = run_campaign(&tiny()).unwrap();
        let (json_path, csv_path) = result.save(&dir).unwrap();
        assert!(json_path.ends_with("campaign_tiny.json"));
        assert!(std::fs::read_to_string(&json_path)
            .unwrap()
            .ends_with("}\n"));
        assert!(std::fs::read_to_string(&csv_path)
            .unwrap()
            .starts_with("scheme,"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trial_arena_reuse_matches_fresh_builds() {
        // Consecutive trials on the same key reset in place; a key
        // change rebuilds. Either way the network must equal the
        // from-scratch build for the same coordinates.
        let mut arena = TrialArena::new();
        let coords = [
            (RegionShape::Full, (8u16, 8u16), 10usize, 0u64),
            (RegionShape::Full, (8, 8), 10, 1),
            (RegionShape::Full, (8, 8), 100, 2),
            (RegionShape::LShape, (8, 8), 10, 0),
            (RegionShape::LShape, (8, 8), 10, 1),
            (RegionShape::Full, (6, 6), 10, 0),
        ];
        for (region, grid, n, trial) in coords {
            let seed = trial_stream_seed(20_080_617, region, grid, n, trial);
            let mode = CampaignMode::FullRecovery;
            let fresh = build_trial_network(mode, 10.0, region, grid, n, seed);
            let reused = arena.network(mode, 10.0, region, grid, n, seed);
            assert_eq!(*reused, fresh, "{region} {grid:?} N={n} t={trial}");
            reused.debug_invariants();
            // Dirty the cached network so the next reset has real work.
            let any = reused.nodes().first().expect("nonempty deployment").id();
            reused.disable_node(any).unwrap();
        }
    }

    fn degraded_tiny() -> CampaignConfig {
        CampaignConfig {
            seeds_per_cell: 2,
            ..CampaignConfig::degraded_smoke()
        }
    }

    #[test]
    fn degraded_campaign_sweeps_weather_and_reports_health() {
        let cfg = degraded_tiny();
        let result = run_campaign(&cfg).unwrap();
        // 3 schemes x 2 targets x (2 latencies x 2 losses) = 24 cells.
        assert_eq!(result.cells.len(), 24);
        assert_eq!(result.cells.len(), cfg.cell_count());
        for cell in &result.cells {
            assert_eq!(cell.trials, 2, "{}", cell.scheme);
            assert!(
                cell.net.is_some(),
                "{}: degraded cells carry the net",
                cell.scheme
            );
            let health = cell.health.as_ref().expect("degraded cells carry health");
            assert_eq!(health.messages_sent.summary().count(), 2);
        }
        // Deployments are paired across schemes AND weather: the trial
        // stream seed has neither a scheme nor a network axis, so every
        // cell at the same target saw identical holes and spares.
        let reference = result.cell_with_net("sr", 10, NetModelSpec::Ideal).unwrap();
        for cell in result.cells.iter().filter(|c| c.n_target == 10) {
            assert_eq!(
                reference.holes, cell.holes,
                "{} {:?}",
                cell.scheme, cell.net
            );
            assert_eq!(
                reference.spares, cell.spares,
                "{} {:?}",
                cell.scheme, cell.net
            );
        }
        // A 30%-loss cell must actually lose messages.
        let lossy = NetModelSpec::Bernoulli {
            loss_ppm: 300_000,
            latency: 1,
        };
        let sr_lossy = result.cell_with_net("sr", 10, lossy).unwrap();
        let dropped = &sr_lossy.health.as_ref().unwrap().messages_dropped;
        assert!(dropped.summary().mean() > 0.0, "30% loss dropped nothing");
        // The artifact carries the degraded axes plus per-cell net and
        // health blocks.
        let json = result.to_json().to_string();
        assert!(json.contains("\"mode\":\"degraded\""));
        assert!(json.contains("\"degraded\":{\"latencies\":[1,3],\"loss_ppms\":[0,300000]}"));
        assert!(json.contains("\"net\":\"ideal\""));
        assert!(json.contains("\"net\":\"lat3\""));
        assert!(json.contains("\"net\":\"loss300000-lat3\""));
        assert!(json.contains("\"health\":{\"messages_sent\""));
        let csv = result.to_csv();
        let header = csv.lines().next().unwrap();
        assert!(header.contains("net,messages_dropped_mean"), "{header}");
        assert!(csv.contains(",loss300000-lat1,"));
        // Closed-mode artifacts carry none of it.
        let closed = run_campaign(&tiny()).unwrap();
        let closed_json = closed.to_json().to_string();
        assert!(!closed_json.contains("\"net\":"));
        assert!(!closed_json.contains("\"degraded\""));
        assert!(!closed.to_csv().lines().next().unwrap().contains("net,"));
    }

    #[test]
    fn degraded_ideal_cells_reproduce_the_classic_campaign() {
        // The conformance guarantee, observed at the aggregate level:
        // the event engine under Ideal weather folds the exact same
        // per-trial metrics the classic driver produces, so the Ideal
        // slice of a degraded campaign equals a closed full-recovery
        // campaign cell-for-cell.
        let degraded = run_campaign(&degraded_tiny()).unwrap();
        let classic_cfg = CampaignConfig {
            mode: CampaignMode::FullRecovery,
            degraded: DegradedParams::default(),
            ..degraded_tiny()
        };
        let classic = run_campaign(&classic_cfg).unwrap();
        for scheme in ["ar", "sr", "sr-sc"] {
            for &n in &[10usize, 100] {
                let ideal = degraded
                    .cell_with_net(scheme, n, NetModelSpec::Ideal)
                    .unwrap();
                let closed = classic.cell(scheme, 8, 8, n).unwrap();
                assert_eq!(
                    ideal.covered_trials, closed.covered_trials,
                    "{scheme} N={n}"
                );
                for field in Metrics::FIELD_NAMES {
                    assert_eq!(
                        ideal.metric(field).unwrap(),
                        closed.metric(field).unwrap(),
                        "{scheme} N={n} {field}"
                    );
                }
            }
        }
    }

    #[test]
    fn degraded_artifact_is_worker_count_invariant() {
        // Bernoulli loss draws come from coordinate-addressed streams,
        // so the schedule interleaving across workers cannot change
        // which messages die.
        let base = run_campaign(&degraded_tiny().with_workers(1)).unwrap();
        for workers in [2, 8] {
            let parallel = run_campaign(&degraded_tiny().with_workers(workers)).unwrap();
            assert_eq!(
                base.to_json().to_string(),
                parallel.to_json().to_string(),
                "workers={workers}"
            );
            assert_eq!(base.to_csv(), parallel.to_csv(), "workers={workers}");
        }
    }

    #[test]
    fn degraded_validation_rejects_bad_axes_and_classic_only_schemes() {
        let mut cfg = degraded_tiny();
        cfg.degraded.latencies.clear();
        let err = run_campaign(&cfg).unwrap_err();
        assert!(matches!(err, CampaignError::BadDegradedParams(_)));
        assert!(err.to_string().contains("non-empty"), "{err}");
        let mut cfg = degraded_tiny();
        cfg.degraded.loss_ppms = vec![2_000_000];
        let err = run_campaign(&cfg).unwrap_err();
        assert!(matches!(err, CampaignError::BadDegradedParams(_)));
        // VF and SMART have no event-driven path; the matrix must say so
        // up front instead of panicking a worker.
        let mut cfg = degraded_tiny();
        cfg.schemes = SchemeId::list(&["sr", "vf"]);
        let err = run_campaign(&cfg).unwrap_err();
        assert_eq!(err, CampaignError::SchemeNotEventDriven { id: "vf".into() });
        assert!(err.to_string().contains("event-driven"), "{err}");
        // Closed modes never read the degraded knobs.
        let mut cfg = tiny();
        cfg.degraded.latencies.clear();
        assert!(run_campaign(&cfg).is_ok());
    }

    #[test]
    fn work_queue_hands_out_every_index_once() {
        let q = WorkQueue::new(100, 3);
        let mut seen = [false; 100];
        // Drain from a single "worker" (forces stealing from the others).
        while let Some(i) = q.pop(1) {
            assert!(!seen[i as usize], "index {i} handed out twice");
            seen[i as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert!(q.pop(0).is_none());
    }
}
