//! Large-grid scenario presets and the indexed-vs-scan repair harness.
//!
//! The paper evaluates on a 16×16 grid, where a per-round full-grid
//! occupancy scan is noise. These presets exercise the grid sizes the
//! incremental [`VacancySet`] index was built for — 64×64 and 128×128
//! fault storms, jammer walks, and mass-failure waves — and
//! [`run_greedy_repair`] runs the same steady-state monitor-and-repair
//! loop under either discovery strategy:
//!
//! * [`OccupancyMode::WordKernel`] — holes are discovered by folding the
//!   change journal into a word-level [`HoleSet`] bitset and sweeping it
//!   with `u64`-block iteration: O(changed) folds with no allocation or
//!   tree rebalancing, `cells/64` word reads per sweep;
//! * [`OccupancyMode::Indexed`] — the PR 2 representation: the same
//!   journal folded into a `BTreeSet` pending set, O(changed) per round
//!   with tree inserts;
//! * [`OccupancyMode::FullScan`] — holes are rediscovered each round by
//!   [`GridNetwork::vacant_cells_scan`], the pre-index O(cells) code
//!   path kept as the baseline.
//!
//! All modes make byte-identical repair decisions (the property the
//! tests pin down); `benches/bench_occupancy.rs` and the `perf` binary
//! measure the wall-clock gaps, which are the tentpole acceptance
//! criteria of the occupancy and kernel refactors.
//!
//! [`VacancySet`]: wsn_grid::VacancySet

use std::collections::BTreeSet;

use wsn_geometry::{sample, Point2, Vec2};
use wsn_grid::{deploy, GridCoord, GridNetwork, GridSystem, HoleSet, RegionShape};
use wsn_simcore::{FaultPlan, Jammer, NodeId, Round, SimRng};

/// A reproducible large-grid fault scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable id, e.g. `mass_failure_64x64`.
    pub name: String,
    /// Grid columns.
    pub cols: u16,
    /// Grid rows.
    pub rows: u16,
    /// Surveillance region shape ([`RegionShape::Full`] for the paper's
    /// rectangle; irregular shapes deploy and repair only enabled
    /// cells).
    pub region: RegionShape,
    /// Nodes deployed per cell (per-cell-exact deployment over the
    /// enabled cells, so the spare budget is `(per_cell - 1) · enabled`).
    pub per_cell: usize,
    /// Deployment and repair seed.
    pub seed: u64,
    /// Scheduled faults.
    pub fault_plan: FaultPlan,
    /// Monitoring horizon: the repair loop runs exactly this many rounds
    /// (steady-state monitoring included), which is what makes the
    /// per-round discovery cost visible.
    pub rounds: Round,
}

impl Scenario {
    /// The paper's cell geometry (`R = 10 m`) at `cols × rows`.
    fn system(cols: u16, rows: u16) -> GridSystem {
        GridSystem::for_comm_range(cols, rows, 10.0).expect("preset dimensions are valid")
    }

    /// One mass-failure wave at round 1 killing 15% of all nodes
    /// (opening ~`cells/45` holes), then a long quiet monitoring tail —
    /// the steady-state regime where per-round discovery cost is the
    /// whole story.
    pub fn mass_failure(cols: u16, rows: u16) -> Scenario {
        let cells = cols as usize * rows as usize;
        let per_cell = 2;
        let kill = per_cell * cells * 15 / 100;
        Scenario {
            name: format!("mass_failure_{cols}x{rows}"),
            cols,
            rows,
            region: RegionShape::Full,
            per_cell,
            seed: 64_001,
            fault_plan: FaultPlan::new().at(
                1,
                wsn_simcore::FaultEvent::KillRandomEnabled { count: kill },
            ),
            rounds: 1024,
        }
    }

    /// Twenty failure waves, one every ten rounds, each killing ~2% of
    /// the deployment — sustained churn rather than one shock.
    pub fn fault_storm(cols: u16, rows: u16) -> Scenario {
        let cells = cols as usize * rows as usize;
        let per_cell = 2;
        let kill = (per_cell * cells / 50).max(1);
        let mut plan = FaultPlan::new();
        for wave in 0..20 {
            plan = plan.at(
                1 + wave * 10,
                wsn_simcore::FaultEvent::KillRandomEnabled { count: kill },
            );
        }
        Scenario {
            name: format!("fault_storm_{cols}x{rows}"),
            cols,
            rows,
            region: RegionShape::Full,
            per_cell,
            seed: 64_002,
            fault_plan: plan,
            rounds: 512,
        }
    }

    /// A jammer disk walking across the middle of the area at one cell
    /// per round, killing everything in its footprint.
    pub fn jammer_walk(cols: u16, rows: u16) -> Scenario {
        let sys = Scenario::system(cols, rows);
        let r = sys.cell_side();
        let jammer = Jammer {
            start: Point2::new(0.0, sys.area().height() / 2.0),
            velocity: Vec2::new(r, 0.0),
            radius: 2.5 * r,
        };
        let walk_rounds = cols as u64 + 1;
        Scenario {
            name: format!("jammer_walk_{cols}x{rows}"),
            cols,
            rows,
            region: RegionShape::Full,
            per_cell: 3,
            seed: 64_003,
            fault_plan: jammer
                .plan(1, 1 + walk_rounds)
                .expect("valid jammer geometry"),
            rounds: walk_rounds + 128,
        }
    }

    /// The preset matrix the occupancy bench and the smoke tests use:
    /// every scenario shape at 64×64, plus a 128×128 mass failure.
    pub fn presets() -> Vec<Scenario> {
        vec![
            Scenario::mass_failure(64, 64),
            Scenario::fault_storm(64, 64),
            Scenario::jammer_walk(64, 64),
            Scenario::mass_failure(128, 128),
        ]
    }

    /// The extra-large tier: every scenario shape at 256×256 (65 536
    /// cells, ~131k deployed nodes for the mass failure) — the scale the
    /// ROADMAP's "fast as the hardware allows" goal is measured at.
    /// Kept out of [`Scenario::presets`] so the default bench matrix
    /// stays minutes-scale; campaign harnesses and the XL smoke test
    /// opt in explicitly.
    pub fn presets_xl() -> Vec<Scenario> {
        vec![
            Scenario::mass_failure(256, 256),
            Scenario::fault_storm(256, 256),
            Scenario::jammer_walk(256, 256),
        ]
    }

    /// Irregular-region presets: every [`RegionShape::IRREGULAR`] shape
    /// as a mass-failure scenario at 64×64 **and** 128×128 (eight
    /// scenarios). Each disables ≥15% of the grid's cells; deployment,
    /// faults, and repair all confine themselves to the enabled region.
    pub fn masked_presets() -> Vec<Scenario> {
        let mut out = Vec::new();
        for (cols, rows) in [(64u16, 64u16), (128, 128)] {
            for shape in RegionShape::IRREGULAR {
                let mut s = Scenario::mass_failure(cols, rows);
                // Scale the kill wave to the enabled-cell population.
                let enabled = shape.build_mask(cols, rows).enabled_count();
                let kill = s.per_cell * enabled * 15 / 100;
                s.fault_plan = FaultPlan::new().at(
                    1,
                    wsn_simcore::FaultEvent::KillRandomEnabled { count: kill },
                );
                s.name = format!("mass_failure_{}_{cols}x{rows}", shape.label());
                s.region = shape;
                out.push(s);
            }
        }
        out
    }

    /// Deploys the scenario's network (per-cell-exact over the enabled
    /// region, fully covered before the first fault).
    pub fn build_network(&self) -> GridNetwork {
        let sys = Scenario::system(self.cols, self.rows);
        let mask = self.region.build_mask(self.cols, self.rows);
        let mut rng = SimRng::seed_from_u64(self.seed);
        let pos = deploy::per_cell_exact_masked(&sys, &mask, self.per_cell, &mut rng);
        GridNetwork::with_mask(sys, mask, &pos).expect("masked generator respects the mask")
    }
}

/// How [`run_greedy_repair`] discovers holes each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccupancyMode {
    /// Fold the occupancy change journal into a word-level [`HoleSet`]
    /// bitset and sweep it as `u64` blocks — O(changed) bit writes per
    /// round, no allocation, `cells/64` word reads per sweep.
    WordKernel,
    /// Fold the occupancy change journal into a `BTreeSet` pending set —
    /// the PR 2 representation: O(changed) tree inserts per round.
    Indexed,
    /// Rescan the whole member table every round — the pre-index
    /// O(cells) baseline.
    FullScan,
}

/// What one repair run did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairOutcome {
    /// Rounds executed (always the scenario horizon).
    pub rounds: Round,
    /// Spares moved into holes.
    pub moves: u64,
    /// Total distance of those moves, meters.
    pub distance: f64,
    /// Holes still open at the end of the horizon.
    pub unfilled: usize,
    /// Cells examined while discovering holes (journal entries + pending
    /// set in indexed mode; `cells × rounds` for the full scan). This is
    /// the diagnostic the two modes are expected to disagree on.
    pub cells_scanned: u64,
}

/// Runs a steady-state monitor-and-repair loop over `scenario.rounds`
/// rounds on `net` (usually [`Scenario::build_network`], supplied by the
/// caller so benches can keep deployment out of the timed region):
/// faults fire per the plan, every discovered hole pulls the lowest-id
/// spare from its richest 4-neighbor (row-major order, skipped when no
/// neighbor has spares), and the loop keeps monitoring through the
/// quiet tail. Repair decisions are identical across modes — only hole
/// *discovery* differs.
pub fn run_greedy_repair(
    scenario: &Scenario,
    mut net: GridNetwork,
    mode: OccupancyMode,
) -> RepairOutcome {
    let mut rng = SimRng::seed_from_u64(scenario.seed ^ 0x9e37_79b9);
    let sys = *net.system();
    net.clear_changed_cells();
    let mut pending: BTreeSet<usize> = net.occupancy().iter_vacant().collect();
    let mut kernel = HoleSet::new(sys.cell_count());
    kernel.assign_vacant(net.occupancy());
    let mut out = RepairOutcome {
        rounds: scenario.rounds,
        moves: 0,
        distance: 0.0,
        unfilled: 0,
        cells_scanned: 0,
    };
    let mut holes: Vec<GridCoord> = Vec::new();
    for round in 0..scenario.rounds {
        let events: Vec<_> = scenario.fault_plan.events_at(round).cloned().collect();
        for ev in events {
            net.apply_fault(&ev, &mut rng);
        }
        holes.clear();
        match mode {
            OccupancyMode::WordKernel => {
                out.cells_scanned += net.changed_cells().len() as u64;
                net.fold_changed_cells_into(&mut kernel);
                out.cells_scanned += kernel.len() as u64;
                holes.extend(kernel.iter().map(|i| sys.coord_of(i)));
            }
            OccupancyMode::Indexed => {
                out.cells_scanned += net.changed_cells().len() as u64;
                net.drain_changed_cells_into(&mut pending);
                out.cells_scanned += pending.len() as u64;
                holes.extend(pending.iter().map(|&i| sys.coord_of(i)));
            }
            OccupancyMode::FullScan => {
                out.cells_scanned += sys.cell_count() as u64;
                holes.extend(net.vacant_cells_scan());
            }
        }
        for &hole in &holes {
            let donor = sys
                .neighbors(hole)
                .into_iter()
                .max_by_key(|&c| net.spare_count(c).unwrap_or(0));
            let Some(donor) = donor.filter(|&c| net.spare_count(c).unwrap_or(0) > 0) else {
                continue; // no adjacent spare this round; stays pending
            };
            let spare: NodeId = net
                .spare_iter(donor)
                .expect("in bounds")
                .min()
                .expect("spare_count > 0");
            let rect = sys.cell_rect(hole).expect("in bounds");
            let dest = sample::point_in_central_area(&rect, rng.uniform_f64(), rng.uniform_f64());
            let moved = net.move_node(spare, dest).expect("dest inside the area");
            out.moves += 1;
            out.distance += moved.distance;
            match mode {
                // The fill lands in the journal; fold it now so the hole
                // leaves the pending set without waiting a round.
                OccupancyMode::WordKernel => net.fold_changed_cells_into(&mut kernel),
                OccupancyMode::Indexed => net.drain_changed_cells_into(&mut pending),
                OccupancyMode::FullScan => {}
            }
        }
    }
    out.unfilled = net.vacant_count();
    debug_assert_eq!(
        net.vacant_iter().collect::<Vec<_>>(),
        net.vacant_cells_scan()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_cover_the_advertised_matrix() {
        let names: Vec<String> = Scenario::presets().into_iter().map(|s| s.name).collect();
        assert!(names.contains(&"mass_failure_64x64".to_string()));
        assert!(names.contains(&"fault_storm_64x64".to_string()));
        assert!(names.contains(&"jammer_walk_64x64".to_string()));
        assert!(names.contains(&"mass_failure_128x128".to_string()));
    }

    #[test]
    fn build_network_is_fully_covered_before_faults() {
        let s = Scenario::mass_failure(16, 16);
        let net = s.build_network();
        assert_eq!(net.vacant_count(), 0);
        assert_eq!(net.total_spares(), 16 * 16);
        net.debug_invariants();
    }

    #[test]
    fn indexed_and_full_scan_make_identical_repairs() {
        // The equivalence the bench's speedup claim rests on: both modes
        // repair the same holes with the same spares — only the
        // discovery cost differs.
        for s in [
            Scenario::mass_failure(24, 24),
            Scenario::fault_storm(24, 24),
            Scenario::jammer_walk(24, 24),
        ] {
            let kernel = run_greedy_repair(&s, s.build_network(), OccupancyMode::WordKernel);
            let indexed = run_greedy_repair(&s, s.build_network(), OccupancyMode::Indexed);
            let scanned = run_greedy_repair(&s, s.build_network(), OccupancyMode::FullScan);
            assert_eq!(indexed.moves, scanned.moves, "{}", s.name);
            assert_eq!(indexed.distance, scanned.distance, "{}", s.name);
            assert_eq!(indexed.unfilled, scanned.unfilled, "{}", s.name);
            assert_eq!(indexed.rounds, scanned.rounds, "{}", s.name);
            // The word kernel is observation-equivalent to the BTreeSet
            // fold in every field, discovery accounting included.
            assert_eq!(kernel, indexed, "{}", s.name);
            assert!(
                indexed.cells_scanned < scanned.cells_scanned / 5,
                "{}: indexed discovery must be far below the full scan \
                 ({} vs {})",
                s.name,
                indexed.cells_scanned,
                scanned.cells_scanned
            );
        }
    }

    #[test]
    fn mass_failure_64x64_recovers_with_indexed_discovery() {
        let s = Scenario::mass_failure(64, 64);
        let out = run_greedy_repair(&s, s.build_network(), OccupancyMode::Indexed);
        assert!(out.moves > 0);
        // Greedy 1-hop repair closes the vast majority of holes; the
        // interior of dense hole clusters stays open once adjacent
        // donors run dry (that is SR's job, not this harness's).
        assert!(
            out.unfilled < out.moves as usize / 5,
            "most holes must close: {out:?}"
        );
        // Steady-state monitoring is nearly free: far fewer cells
        // examined than one full scan per round would cost.
        assert!(out.cells_scanned < s.rounds * 64 * 64 / 5);
    }

    #[test]
    fn xl_presets_cover_256x256() {
        let names: Vec<String> = Scenario::presets_xl().into_iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "mass_failure_256x256".to_string(),
                "fault_storm_256x256".to_string(),
                "jammer_walk_256x256".to_string(),
            ]
        );
        for s in Scenario::presets_xl() {
            assert_eq!((s.cols, s.rows), (256, 256));
        }
    }

    #[test]
    fn mass_failure_256x256_recovers_with_indexed_discovery() {
        // The XL tier at test scale: shorten the quiet monitoring tail
        // (the bench runs the full horizon) but keep the full 256×256
        // deployment and fault wave.
        let mut s = Scenario::mass_failure(256, 256);
        s.rounds = 64;
        let out = run_greedy_repair(&s, s.build_network(), OccupancyMode::Indexed);
        assert!(out.moves > 1000, "the wave must open thousands of holes");
        assert!(
            out.unfilled < out.moves as usize / 5,
            "most holes must close: {out:?}"
        );
        // Indexed discovery stays far below one full scan per round even
        // at 65 536 cells.
        assert!(out.cells_scanned < s.rounds * 256 * 256 / 5);
    }

    #[test]
    fn masked_presets_cover_both_tiers_with_heavy_masks() {
        let presets = Scenario::masked_presets();
        assert_eq!(presets.len(), 8);
        for s in &presets {
            assert_ne!(s.region, RegionShape::Full);
            let mask = s.region.build_mask(s.cols, s.rows);
            assert!(
                mask.disabled_count() * 100 >= mask.cell_count() * 15,
                "{}: only {} of {} cells disabled",
                s.name,
                mask.disabled_count(),
                mask.cell_count()
            );
        }
        assert!(presets.iter().any(|s| (s.cols, s.rows) == (64, 64)));
        assert!(presets.iter().any(|s| (s.cols, s.rows) == (128, 128)));
    }

    #[test]
    fn masked_scenario_repairs_only_enabled_cells() {
        // Shrink one masked preset to test scale and run both discovery
        // modes: identical repairs, no placements in disabled cells.
        let mut s = Scenario::mass_failure(24, 24);
        s.region = RegionShape::Annulus;
        let mask = s.region.build_mask(24, 24);
        let kill = s.per_cell * mask.enabled_count() * 15 / 100;
        s.fault_plan = FaultPlan::new().at(
            1,
            wsn_simcore::FaultEvent::KillRandomEnabled { count: kill },
        );
        s.rounds = 256;
        let kernel = run_greedy_repair(&s, s.build_network(), OccupancyMode::WordKernel);
        let indexed = run_greedy_repair(&s, s.build_network(), OccupancyMode::Indexed);
        let scanned = run_greedy_repair(&s, s.build_network(), OccupancyMode::FullScan);
        assert_eq!(indexed.moves, scanned.moves);
        assert_eq!(indexed.distance, scanned.distance);
        assert_eq!(indexed.unfilled, scanned.unfilled);
        assert_eq!(
            kernel, indexed,
            "word kernel must match the fold on masked regions"
        );
        assert!(indexed.moves > 0);
        let net = s.build_network();
        net.debug_invariants();
        assert_eq!(net.stats().vacant, 0);
        assert_eq!(net.enabled_count(), mask.enabled_count() * s.per_cell);
    }

    #[test]
    fn jammer_walk_is_deterministic() {
        let s = Scenario::jammer_walk(24, 24);
        let a = run_greedy_repair(&s, s.build_network(), OccupancyMode::Indexed);
        let b = run_greedy_repair(&s, s.build_network(), OccupancyMode::Indexed);
        assert_eq!(a, b);
    }
}
