//! Experiment harness: regenerates every evaluation figure of the paper.
//!
//! The paper's evaluation (its §5) compares **SR** (this repository's
//! [`wsn_coverage`]) against **AR** ([`wsn_baselines::ar`]) on a 16×16
//! virtual grid with `R = 10 m` (`r = 4.4721 m`), uniform deployment, and
//! "number of spare sensors N" swept from 10 to 1000. Figures 3 and 5 are
//! purely analytical (Theorem 2); Figures 6–8 are Monte-Carlo.
//!
//! | Figure | Content | Generator |
//! |---|---|---|
//! | 3(a)/3(b) | analytical #moves vs N (4×5, 16×16) | [`figures::fig3`] |
//! | 5(a)/5(b) | analytical distance vs N (r = 10) | [`figures::fig5`] |
//! | 6(a) | #processes initiated, AR vs SR | [`figures::fig6a`] |
//! | 6(b) | success rate (%), AR vs SR | [`figures::fig6b`] |
//! | 7(a)/(b) | #node moves, experimental + analytical | [`figures::fig7`] |
//! | 8(a)/(b) | total moving distance, experimental + analytical | [`figures::fig8`] |
//!
//! Deployment methodology (from the paper): with `(N + m·n)` enabled
//! nodes dropped uniformly, the network holds `N + holes` spares and
//! `holes` vacant cells; each replacement consumes exactly one spare, so
//! `N` spares remain after full recovery. [`sweep::run_sweep`] executes
//! the Monte-Carlo trials (in parallel across seeds via scoped threads) and
//! both schemes see byte-identical deployments.
//!
//! [`campaign`] scales the same methodology to full experiment matrices
//! (scheme × region shape × grid × `N` × seed) with streaming per-cell
//! statistics and confidence intervals — `figures --campaign`
//! regenerates Figures 6–8 from a ≥30-seed campaign with 95% CI
//! whiskers, and `figures --campaign --masked` adds the
//! irregular-region comparison over [`wsn_grid::RegionShape`]
//! ([`scenarios`] holds the matching 64×64/128×128 masked presets).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod figures;
pub mod perf;
pub mod replay;
pub mod scenarios;
pub mod steady;
pub mod sweep;

pub use campaign::{
    run_campaign, run_campaign_resumable, run_campaign_resumable_with, run_campaign_with,
    CampaignCheckpoint, CampaignConfig, CampaignError, CampaignMode, CampaignObserver,
    CampaignResult, CampaignRun, CancelAfter, CellStats,
};
pub use replay::{
    record, scheme_with_plan, shrink_between, Recording, ReplayArtifact, ReplayError, ReplaySpec,
};
pub use scenarios::{run_greedy_repair, OccupancyMode, RepairOutcome, Scenario};
pub use steady::{run_steady_trial, SpareRotation, SteadyOutcome, SteadyParams, SteadySummary};
pub use sweep::{run_sweep, SweepConfig, TrialResult};
