//! Open-system steady-state availability workloads.
//!
//! The paper's §5 experiments are *closed*: drop a deployment, repair its
//! holes once, measure the bill. A deployed surveillance network lives in
//! an *open* system — sensors keep failing, spares keep arriving, weather
//! keeps rolling through — and the question becomes an SLA one: what
//! fraction of time does the network hold its coverage target, and how
//! long does a hole live before a replacement closes it?
//!
//! This module drives one [`ReplacementScheme`] through that regime:
//!
//! * **Poisson faults.** Each tick kills `Poisson(fault_rate)` enabled
//!   nodes chosen uniformly ([`wsn_simcore::FaultEvent::KillRandomEnabled`]),
//!   drawn from a dedicated RNG stream so every scheme replays the
//!   identical fault schedule (the paper's paired methodology, extended
//!   in time).
//! * **Poisson arrivals.** Each tick lands `Poisson(arrival_rate)` fresh
//!   nodes with configurable battery at uniform positions — the spare
//!   resupply that keeps the system from draining to zero.
//! * **Recurring weather.** A moving [`Jammer`] disk crosses the area
//!   every `jammer_period` ticks, killing everything it touches —
//!   including nodes exactly on its rim (closed boundary, see
//!   [`wsn_geometry::Disk::contains`]).
//! * **Energy.** Every tick's movement, messaging, and idle duty is
//!   billed through [`EnergyModel`]; idle duty also drains each node's
//!   [`Battery`], and a configurable [`SpareRotation`] policy retires
//!   weak spares before they die in place.
//!
//! The per-trial observable is a [`SteadyOutcome`]: coverage
//! availability (fraction of ticks at or above the SLA), hole lifetimes
//! in a mergeable [`Histogram`] (for p50/p99/p999), movement-energy burn
//! rate, and mean time to repair. [`crate::campaign`] aggregates
//! outcomes across seeds via [`SteadySummary`] under
//! [`CampaignMode::SteadyState`](crate::campaign::CampaignMode), with
//! the same worker-count-invariant artifact guarantee as the closed
//! modes.
//!
//! # Example
//!
//! ```
//! use wsn_bench::steady::{run_steady_trial, SteadyParams};
//! use wsn_coverage::ReplacementScheme;
//!
//! let params = SteadyParams {
//!     ticks: 16,
//!     ..SteadyParams::default()
//! };
//! let sys = wsn_grid::GridSystem::for_comm_range(6, 6, 10.0)?;
//! let mut rng = wsn_simcore::SimRng::seed_from_u64(7);
//! let positions = wsn_grid::deploy::uniform(&sys, 60, &mut rng);
//! let mut net = wsn_grid::GridNetwork::new(sys, &positions);
//! let sr = wsn_coverage::Sr::new();
//! let outcome = run_steady_trial(&params, &sr, &mut net, 42);
//! assert_eq!(outcome.ticks, 16);
//! assert!(outcome.availability() >= 0.0 && outcome.availability() <= 1.0);
//! # Ok::<(), wsn_grid::GridError>(())
//! ```

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use wsn_coverage::scheme::{DriveMode, ReplacementScheme};
use wsn_geometry::{sample, Disk, Point2, Vec2};
use wsn_grid::{GridCoord, GridNetwork, GridSystem};
use wsn_simcore::{
    derive_stream_seed, Battery, EnergyModel, FaultEvent, Jammer, Metrics, NodeId, SimRng,
};
use wsn_stats::{Histogram, JsonValue, StreamingStat};

/// Stream tag for the fault process (kills per tick + victim choice).
const STREAM_FAULT: u64 = 0xFA;
/// Stream tag for the arrival process (arrivals per tick + positions).
const STREAM_ARRIVAL: u64 = 0xA1;
/// Stream tag prefix for per-tick repair seeds handed to the scheme.
const STREAM_REPAIR: u64 = 0x5E;

/// Spare-rotation policy: what to do with weak spares before they die in
/// place and (eventually) open a hole nobody can close.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpareRotation {
    /// Keep every spare until its battery dies.
    Off,
    /// Retire (disable) any *spare* whose battery fraction falls below
    /// the threshold. Retiring a spare never opens a hole: only cells
    /// with at least two members are scanned, and the head stays.
    RetireBelow {
        /// Battery fraction below which a spare is retired, in `(0, 1]`.
        fraction: f64,
    },
}

impl SpareRotation {
    fn to_json(self) -> JsonValue {
        match self {
            SpareRotation::Off => JsonValue::obj([("policy", JsonValue::from("off"))]),
            SpareRotation::RetireBelow { fraction } => JsonValue::obj([
                ("policy", JsonValue::from("retire_below")),
                ("fraction", JsonValue::from(fraction)),
            ]),
        }
    }

    fn from_json(v: &JsonValue) -> Result<SpareRotation, String> {
        match v.get("policy").and_then(JsonValue::as_str) {
            Some("off") => Ok(SpareRotation::Off),
            Some("retire_below") => Ok(SpareRotation::RetireBelow {
                fraction: crate::campaign::wire_f64(v, "fraction")?,
            }),
            Some(other) => Err(format!("unknown rotation policy '{other}'")),
            None => Err("rotation block needs a 'policy' string".into()),
        }
    }
}

/// Configuration of one steady-state availability workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SteadyParams {
    /// Simulated ticks (one fault/arrival/repair cycle each).
    pub ticks: u64,
    /// Mean enabled-node kills per tick (Poisson).
    pub fault_rate: f64,
    /// Mean node arrivals per tick (Poisson).
    pub arrival_rate: f64,
    /// Battery capacity (J) of arriving nodes.
    pub arrival_battery: f64,
    /// Ticks between jammer crossings; `0` disables the jammer.
    pub jammer_period: u64,
    /// Jammer disk radius in units of the grid cell side.
    pub jammer_radius_cells: f64,
    /// Coverage fraction at or above which a tick counts as available.
    pub coverage_sla: f64,
    /// What to do with weak spares.
    pub rotation: SpareRotation,
    /// Bins of the hole-lifetime histogram (range is `[0, ticks + 1)`,
    /// fixed by the config so shards merge exactly).
    pub hole_life_bins: usize,
    /// Energy prices for movement, messaging, and idle duty.
    pub energy: EnergyModel,
}

impl Default for SteadyParams {
    fn default() -> Self {
        SteadyParams {
            ticks: 128,
            fault_rate: 1.0,
            arrival_rate: 1.0,
            arrival_battery: 10_000.0,
            jammer_period: 32,
            jammer_radius_cells: 1.5,
            coverage_sla: 0.98,
            rotation: SpareRotation::Off,
            hole_life_bins: 64,
            energy: EnergyModel::default(),
        }
    }
}

impl SteadyParams {
    /// Validates the workload parameters.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when any knob is out of range.
    pub fn validate(&self) -> Result<(), String> {
        if self.ticks == 0 {
            return Err("ticks must be at least 1".into());
        }
        if !(self.fault_rate.is_finite() && self.fault_rate >= 0.0) {
            return Err(format!(
                "fault_rate must be finite and >= 0, got {}",
                self.fault_rate
            ));
        }
        if !(self.arrival_rate.is_finite() && self.arrival_rate >= 0.0) {
            return Err(format!(
                "arrival_rate must be finite and >= 0, got {}",
                self.arrival_rate
            ));
        }
        if !(self.arrival_battery.is_finite() && self.arrival_battery > 0.0) {
            return Err(format!(
                "arrival_battery must be finite and positive, got {}",
                self.arrival_battery
            ));
        }
        if self.jammer_period > 0
            && !(self.jammer_radius_cells.is_finite() && self.jammer_radius_cells > 0.0)
        {
            return Err(format!(
                "jammer_radius_cells must be finite and positive, got {}",
                self.jammer_radius_cells
            ));
        }
        if !(self.coverage_sla.is_finite() && (0.0..=1.0).contains(&self.coverage_sla)) {
            return Err(format!(
                "coverage_sla must be in [0, 1], got {}",
                self.coverage_sla
            ));
        }
        if let SpareRotation::RetireBelow { fraction } = self.rotation {
            if !(fraction.is_finite() && fraction > 0.0 && fraction <= 1.0) {
                return Err(format!(
                    "rotation fraction must be in (0, 1], got {fraction}"
                ));
            }
        }
        if self.hole_life_bins == 0 {
            return Err("hole_life_bins must be at least 1".into());
        }
        Ok(())
    }

    /// The (empty) hole-lifetime histogram this config prescribes. Every
    /// shard uses the identical binning, so [`Histogram::merge`] is
    /// exact.
    pub fn lifetime_histogram(&self) -> Histogram {
        Histogram::new(0.0, (self.ticks + 1) as f64, self.hole_life_bins)
            .expect("validated: ticks >= 1 and bins >= 1")
    }

    /// Stable JSON view (fixed key order) for campaign artifacts.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("ticks", JsonValue::from(self.ticks)),
            ("fault_rate", JsonValue::from(self.fault_rate)),
            ("arrival_rate", JsonValue::from(self.arrival_rate)),
            ("arrival_battery", JsonValue::from(self.arrival_battery)),
            ("jammer_period", JsonValue::from(self.jammer_period)),
            (
                "jammer_radius_cells",
                JsonValue::from(self.jammer_radius_cells),
            ),
            ("coverage_sla", JsonValue::from(self.coverage_sla)),
            ("rotation", self.rotation.to_json()),
            ("hole_life_bins", JsonValue::from(self.hole_life_bins)),
            (
                "energy",
                JsonValue::obj([
                    (
                        "move_cost_per_meter",
                        JsonValue::from(self.energy.move_cost_per_meter),
                    ),
                    ("message_cost", JsonValue::from(self.energy.message_cost)),
                    (
                        "idle_cost_per_round",
                        JsonValue::from(self.energy.idle_cost_per_round),
                    ),
                ]),
            ),
        ])
    }

    /// Parses the [`SteadyParams::to_json`] wire form back into params.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    /// Range validation stays with [`SteadyParams::validate`]; this only
    /// enforces wire-level shape (numbers are numbers, integers are
    /// exactly-representable integers).
    pub fn from_json(v: &JsonValue) -> Result<SteadyParams, String> {
        use crate::campaign::{wire_f64, wire_u64, wire_usize};
        let energy = v.get("energy").ok_or("steady field 'energy' missing")?;
        Ok(SteadyParams {
            ticks: wire_u64(v, "ticks")?,
            fault_rate: wire_f64(v, "fault_rate")?,
            arrival_rate: wire_f64(v, "arrival_rate")?,
            arrival_battery: wire_f64(v, "arrival_battery")?,
            jammer_period: wire_u64(v, "jammer_period")?,
            jammer_radius_cells: wire_f64(v, "jammer_radius_cells")?,
            coverage_sla: wire_f64(v, "coverage_sla")?,
            rotation: SpareRotation::from_json(
                v.get("rotation").ok_or("steady field 'rotation' missing")?,
            )?,
            hole_life_bins: wire_usize(v, "hole_life_bins")?,
            energy: EnergyModel {
                move_cost_per_meter: wire_f64(energy, "move_cost_per_meter")?,
                message_cost: wire_f64(energy, "message_cost")?,
                idle_cost_per_round: wire_f64(energy, "idle_cost_per_round")?,
            },
        })
    }
}

/// What one steady-state trial observed.
#[derive(Debug, Clone, PartialEq)]
pub struct SteadyOutcome {
    /// Ticks simulated.
    pub ticks: u64,
    /// Ticks whose post-repair coverage met the SLA.
    pub covered_ticks: u64,
    /// Lifetimes (ticks from first observation to repair) of every hole
    /// that closed during the trial.
    pub hole_lifetimes: Histogram,
    /// Holes that closed during the trial.
    pub repaired_holes: u64,
    /// Holes still open when the trial ended (right-censored: their
    /// lifetimes are *not* in the histogram).
    pub censored_holes: u64,
    /// Sum of all repaired-hole lifetimes, for the MTTR mean.
    pub lifetime_tick_sum: f64,
    /// Nodes killed by the fault and jammer processes.
    pub failures: u64,
    /// Nodes that arrived.
    pub arrivals: u64,
    /// Spares retired by the rotation policy.
    pub retired_spares: u64,
    /// Nodes disabled because idle duty drained their battery.
    pub battery_deaths: u64,
    /// Total energy billed (movement + messages + idle), joules.
    pub energy_joules: f64,
    /// Scheme metrics accumulated over every repair invocation
    /// (`rounds` is the true sum across ticks, not the per-run max).
    pub metrics: Metrics,
}

impl SteadyOutcome {
    /// Fraction of ticks that met the coverage SLA.
    pub fn availability(&self) -> f64 {
        if self.ticks == 0 {
            return 0.0;
        }
        self.covered_ticks as f64 / self.ticks as f64
    }

    /// Mean time to repair in ticks (`None` when no hole was repaired).
    /// A hole opened and closed within the same tick has latency 0.
    pub fn mttr(&self) -> Option<f64> {
        if self.repaired_holes == 0 {
            return None;
        }
        Some(self.lifetime_tick_sum / self.repaired_holes as f64)
    }

    /// Energy burn rate in joules per tick.
    pub fn energy_rate(&self) -> f64 {
        if self.ticks == 0 {
            return 0.0;
        }
        self.energy_joules / self.ticks as f64
    }
}

/// The jammer disks active at `tick`: one crossing starts at every
/// multiple of `jammer_period`, entering from the left edge at
/// mid-height and advancing one cell side per tick; crossings long
/// enough to overlap simply stack.
pub(crate) fn jammer_disks(params: &SteadyParams, sys: &GridSystem, tick: u64) -> Vec<Disk> {
    if params.jammer_period == 0 {
        return Vec::new();
    }
    let area = sys.area();
    let side = sys.cell_side();
    let radius = params.jammer_radius_cells * side;
    // Rounds until the disk has fully exited on the right.
    let duration = ((area.width() + 2.0 * radius) / side).ceil() as u64 + 1;
    let jammer = Jammer {
        start: Point2::new(area.min().x - radius, area.min().y + area.height() / 2.0),
        velocity: Vec2::new(side, 0.0),
        radius,
    };
    let mut disks = Vec::new();
    let mut t0 = 0u64;
    while t0 <= tick {
        let age = tick - t0;
        if age < duration {
            disks.push(jammer.disk_at(age).expect("validated: radius > 0"));
        }
        t0 += params.jammer_period;
    }
    disks
}

/// Drives one scheme through the open-system workload on `net`.
///
/// Fully deterministic in `(params, net, seed)`: the fault, arrival and
/// repair processes each draw from their own
/// [`wsn_simcore::SimRng::for_stream`] stream derived from `seed`, so
/// two schemes handed clones of the same deployment see byte-identical
/// fault schedules and arrival sequences — the paired-comparison
/// property the closed campaign modes already have, extended in time.
///
/// Each tick: faults strike (Poisson kills, then any active jammer
/// disks), arrivals land, hole openings are recorded, the scheme runs
/// one repair episode, closures are credited, energy is billed (idle
/// duty drains every enabled battery; depleted nodes die), and the
/// rotation policy retires weak spares.
pub fn run_steady_trial(
    params: &SteadyParams,
    scheme: &dyn ReplacementScheme,
    net: &mut GridNetwork,
    seed: u64,
) -> SteadyOutcome {
    let mut fault_rng = SimRng::for_stream(seed, &[STREAM_FAULT]);
    let mut arrival_rng = SimRng::for_stream(seed, &[STREAM_ARRIVAL]);
    let mut out = SteadyOutcome {
        ticks: params.ticks,
        covered_ticks: 0,
        hole_lifetimes: params.lifetime_histogram(),
        repaired_holes: 0,
        censored_holes: 0,
        lifetime_tick_sum: 0.0,
        failures: 0,
        arrivals: 0,
        retired_spares: 0,
        battery_deaths: 0,
        energy_joules: 0.0,
        metrics: Metrics::new(),
    };
    let mut rounds_sum = 0u64;
    // When each currently-open hole was first observed.
    let mut open_since: BTreeMap<GridCoord, u64> = BTreeMap::new();
    let enabled_cells: Vec<GridCoord> = net.mask().iter_enabled().collect();
    let total_cells = enabled_cells.len();

    for tick in 0..params.ticks {
        // 1. Poisson background failures.
        let kills = fault_rng.poisson(params.fault_rate) as usize;
        if kills > 0 {
            out.failures += net
                .apply_fault(
                    &FaultEvent::KillRandomEnabled { count: kills },
                    &mut fault_rng,
                )
                .len() as u64;
        }
        // 2. Weather: every active jammer crossing strikes once.
        for disk in jammer_disks(params, net.system(), tick) {
            out.failures += net
                .apply_fault(&FaultEvent::KillRegion(disk), &mut fault_rng)
                .len() as u64;
        }
        // 3. Poisson spare arrivals, uniform over enabled cells.
        let arrivals = arrival_rng.poisson(params.arrival_rate);
        for _ in 0..arrivals {
            let cell = enabled_cells[arrival_rng.range_usize(total_cells)];
            let rect = net
                .system()
                .cell_rect(cell)
                .expect("enabled cell in bounds");
            let p =
                sample::point_in_rect(&rect, arrival_rng.uniform_f64(), arrival_rng.uniform_f64());
            net.add_node_with_battery(p, Battery::new(params.arrival_battery))
                .expect("enabled cell accepts arrivals");
        }
        out.arrivals += arrivals;
        // 4. Record when each hole was first observed (pre-repair).
        for coord in net.vacant_iter() {
            open_since.entry(coord).or_insert(tick);
        }
        // 5. One repair episode.
        let repair_seed = derive_stream_seed(seed, &[STREAM_REPAIR, tick]);
        let report = scheme
            .run(net, repair_seed, DriveMode::Classic)
            .expect("campaign validation proved the scheme supports this network");
        rounds_sum += report.metrics.rounds;
        out.metrics += report.metrics;
        // 6. Credit closures: an observed hole whose cell is occupied
        //    again lived `tick - opened` ticks (0 = same-tick repair).
        let occupancy = net.occupancy();
        let closed: Vec<GridCoord> = open_since
            .iter()
            .filter(|(c, _)| {
                let idx = net.system().index_of(**c).expect("tracked holes in bounds");
                !occupancy.is_vacant(idx)
            })
            .map(|(c, _)| *c)
            .collect();
        for coord in closed {
            let opened = open_since.remove(&coord).expect("just observed");
            let lifetime = (tick - opened) as f64;
            out.hole_lifetimes.record(lifetime);
            out.lifetime_tick_sum += lifetime;
            out.repaired_holes += 1;
        }
        // 7. Energy: bill the tick globally, then drain idle duty from
        //    every enabled battery (depleted nodes die in place; the
        //    hole they open is observed next tick).
        let enabled_nodes: Vec<NodeId> = net
            .nodes()
            .iter()
            .filter(|n| n.status().is_enabled())
            .map(|n| n.id())
            .collect();
        out.energy_joules += params.energy.bill(
            report.metrics.distance,
            report.metrics.messages,
            enabled_nodes.len() as u64,
        );
        let idle_draw = params.energy.idle(1);
        for id in enabled_nodes {
            if net.draw_battery(id, idle_draw).expect("live id") {
                net.disable_node(id).expect("live id");
                out.battery_deaths += 1;
            }
        }
        // 8. Rotation: retire weak spares before they die in place.
        if let SpareRotation::RetireBelow { fraction } = params.rotation {
            let spareful: Vec<GridCoord> = net.spareful_iter().collect();
            let mut retire = Vec::new();
            for coord in spareful {
                let spares: Vec<NodeId> = net
                    .spare_iter(coord)
                    .expect("spareful cells are enabled")
                    .collect();
                for id in spares {
                    let node = net.node(id).expect("member ids are live");
                    if node.status().is_enabled() && node.battery().fraction() < fraction {
                        retire.push(id);
                    }
                }
            }
            for id in retire {
                net.disable_node(id).expect("live id");
                out.retired_spares += 1;
            }
        }
        // 9. Post-repair coverage vs the SLA.
        let coverage = 1.0 - net.vacant_count() as f64 / total_cells as f64;
        out.covered_ticks += u64::from(coverage >= params.coverage_sla);
    }
    // `Metrics + Metrics` keeps the max of the two `rounds` (it merges
    // concurrent phases); a time series needs the sum.
    out.metrics.rounds = rounds_sum;
    out.censored_holes = open_since.len() as u64;
    out
}

/// Streaming aggregate of steady-state outcomes across a cell's trials.
///
/// Hole lifetimes merge exactly (identical binning from the shared
/// [`SteadyParams`]); availability, MTTR and burn rate fold as per-trial
/// observations with CIs.
#[derive(Debug, Clone, PartialEq)]
pub struct SteadySummary {
    /// Per-trial coverage availability in `[0, 1]`.
    pub availability: StreamingStat,
    /// Per-trial mean time to repair, ticks (trials with no repaired
    /// hole contribute no observation).
    pub mttr: StreamingStat,
    /// Per-trial energy burn rate, joules per tick.
    pub energy_rate: StreamingStat,
    /// Merged hole-lifetime histogram across every trial.
    pub hole_lifetimes: Histogram,
    /// Holes repaired across every trial.
    pub repaired_holes: u64,
    /// Holes still open at trial end, across every trial.
    pub censored_holes: u64,
    /// Kills by fault and jammer processes, across every trial.
    pub failures: u64,
    /// Node arrivals, across every trial.
    pub arrivals: u64,
    /// Spares retired by rotation, across every trial.
    pub retired_spares: u64,
    /// Battery-exhaustion deaths, across every trial.
    pub battery_deaths: u64,
}

impl SteadySummary {
    /// Empty aggregate with the binning the params prescribe.
    pub fn new(params: &SteadyParams) -> SteadySummary {
        SteadySummary {
            availability: StreamingStat::new(),
            mttr: StreamingStat::new(),
            energy_rate: StreamingStat::new(),
            hole_lifetimes: params.lifetime_histogram(),
            repaired_holes: 0,
            censored_holes: 0,
            failures: 0,
            arrivals: 0,
            retired_spares: 0,
            battery_deaths: 0,
        }
    }

    /// Folds one trial's outcome into the aggregate.
    pub fn push(&mut self, o: &SteadyOutcome) {
        self.availability.push(o.availability());
        if let Some(mttr) = o.mttr() {
            self.mttr.push(mttr);
        }
        self.energy_rate.push(o.energy_rate());
        self.hole_lifetimes.merge(&o.hole_lifetimes);
        self.repaired_holes += o.repaired_holes;
        self.censored_holes += o.censored_holes;
        self.failures += o.failures;
        self.arrivals += o.arrivals;
        self.retired_spares += o.retired_spares;
        self.battery_deaths += o.battery_deaths;
    }

    /// Hole-lifetime percentile from the merged histogram (`None` until
    /// a hole has been repaired).
    pub fn lifetime_percentile(&self, p: f64) -> Option<f64> {
        self.hole_lifetimes.percentile(p)
    }

    /// Stable JSON view (fixed key order) for campaign artifacts.
    pub fn to_json(&self, ci_level: f64) -> JsonValue {
        let pct = |p: f64| match self.hole_lifetimes.percentile(p) {
            Some(v) => JsonValue::from(v),
            None => JsonValue::Null,
        };
        JsonValue::obj([
            ("availability", self.availability.to_json(ci_level)),
            ("mttr", self.mttr.to_json(ci_level)),
            ("energy_rate", self.energy_rate.to_json(ci_level)),
            ("hole_lifetime_p50", pct(50.0)),
            ("hole_lifetime_p99", pct(99.0)),
            ("hole_lifetime_p999", pct(99.9)),
            (
                "hole_lifetime_counts",
                JsonValue::Arr(
                    self.hole_lifetimes
                        .counts()
                        .iter()
                        .map(|&c| JsonValue::from(c))
                        .collect(),
                ),
            ),
            ("repaired_holes", JsonValue::from(self.repaired_holes)),
            ("censored_holes", JsonValue::from(self.censored_holes)),
            ("failures", JsonValue::from(self.failures)),
            ("arrivals", JsonValue::from(self.arrivals)),
            ("retired_spares", JsonValue::from(self.retired_spares)),
            ("battery_deaths", JsonValue::from(self.battery_deaths)),
        ])
    }

    /// Serializes the aggregate *state* (accumulator registers and raw
    /// counters) for campaign checkpoints. [`SteadySummary::to_json`] is
    /// the report; this round-trips through
    /// [`SteadySummary::from_state_json`] so a resumed campaign keeps
    /// folding exactly where the interrupted one stopped.
    pub fn to_state_json(&self) -> JsonValue {
        JsonValue::obj([
            ("availability", self.availability.to_state_json()),
            ("mttr", self.mttr.to_state_json()),
            ("energy_rate", self.energy_rate.to_state_json()),
            ("hole_lifetimes", self.hole_lifetimes.to_state_json()),
            ("repaired_holes", JsonValue::from(self.repaired_holes)),
            ("censored_holes", JsonValue::from(self.censored_holes)),
            ("failures", JsonValue::from(self.failures)),
            ("arrivals", JsonValue::from(self.arrivals)),
            ("retired_spares", JsonValue::from(self.retired_spares)),
            ("battery_deaths", JsonValue::from(self.battery_deaths)),
        ])
    }

    /// Restores a [`SteadySummary::to_state_json`] state.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn from_state_json(v: &JsonValue) -> Result<SteadySummary, String> {
        use crate::campaign::wire_u64;
        let stat = |key: &str| -> Result<StreamingStat, String> {
            StreamingStat::from_state_json(
                v.get(key)
                    .ok_or_else(|| format!("steady state field '{key}' missing"))?,
            )
        };
        Ok(SteadySummary {
            availability: stat("availability")?,
            mttr: stat("mttr")?,
            energy_rate: stat("energy_rate")?,
            hole_lifetimes: Histogram::from_state_json(
                v.get("hole_lifetimes")
                    .ok_or("steady state field 'hole_lifetimes' missing")?,
            )?,
            repaired_holes: wire_u64(v, "repaired_holes")?,
            censored_holes: wire_u64(v, "censored_holes")?,
            failures: wire_u64(v, "failures")?,
            arrivals: wire_u64(v, "arrivals")?,
            retired_spares: wire_u64(v, "retired_spares")?,
            battery_deaths: wire_u64(v, "battery_deaths")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_coverage::Sr;
    use wsn_grid::deploy;

    fn network(cols: u16, rows: u16, nodes: usize, seed: u64) -> GridNetwork {
        let sys = GridSystem::for_comm_range(cols, rows, 10.0).unwrap();
        let mut rng = SimRng::seed_from_u64(seed);
        let positions = deploy::uniform(&sys, nodes, &mut rng);
        GridNetwork::new(sys, &positions)
    }

    #[test]
    fn params_validation_rejects_bad_knobs() {
        assert!(SteadyParams::default().validate().is_ok());
        let bad = [
            SteadyParams {
                ticks: 0,
                ..SteadyParams::default()
            },
            SteadyParams {
                fault_rate: -1.0,
                ..SteadyParams::default()
            },
            SteadyParams {
                arrival_rate: f64::NAN,
                ..SteadyParams::default()
            },
            SteadyParams {
                arrival_battery: 0.0,
                ..SteadyParams::default()
            },
            SteadyParams {
                jammer_radius_cells: 0.0,
                ..SteadyParams::default()
            },
            SteadyParams {
                coverage_sla: 1.5,
                ..SteadyParams::default()
            },
            SteadyParams {
                rotation: SpareRotation::RetireBelow { fraction: 0.0 },
                ..SteadyParams::default()
            },
            SteadyParams {
                hole_life_bins: 0,
                ..SteadyParams::default()
            },
        ];
        for p in bad {
            assert!(p.validate().is_err(), "{p:?}");
        }
        // A zero radius is fine while the jammer is off.
        let off = SteadyParams {
            jammer_period: 0,
            jammer_radius_cells: 0.0,
            ..SteadyParams::default()
        };
        assert!(off.validate().is_ok());
    }

    #[test]
    fn trial_is_deterministic_in_seed() {
        let params = SteadyParams {
            ticks: 24,
            ..SteadyParams::default()
        };
        let sr = Sr::new();
        let mut a = network(6, 6, 50, 9);
        let mut b = network(6, 6, 50, 9);
        let one = run_steady_trial(&params, &sr, &mut a, 1234);
        let two = run_steady_trial(&params, &sr, &mut b, 1234);
        assert_eq!(one, two);
        assert_eq!(a, b);
        a.debug_invariants();
        // A different seed moves every stochastic process.
        let mut c = network(6, 6, 50, 9);
        let other = run_steady_trial(&params, &sr, &mut c, 1235);
        assert_ne!(one, other);
    }

    #[test]
    fn fault_streams_are_paired_across_schemes() {
        // Two schemes handed clones of one deployment see the identical
        // fault schedule: kill counts differ only through repair-induced
        // occupancy differences, and with repairs that always succeed
        // the failure totals match exactly.
        let params = SteadyParams {
            ticks: 16,
            jammer_period: 8,
            ..SteadyParams::default()
        };
        let sr = Sr::new();
        let ar = wsn_baselines::Ar::new();
        let mut a = network(6, 6, 80, 3);
        let mut b = a.clone();
        let sr_out = run_steady_trial(&params, &sr, &mut a, 77);
        let ar_out = run_steady_trial(&params, &ar, &mut b, 77);
        assert_eq!(sr_out.arrivals, ar_out.arrivals);
        assert!(sr_out.failures > 0);
    }

    #[test]
    fn jammer_schedule_covers_recurring_crossings() {
        let sys = GridSystem::for_comm_range(8, 8, 10.0).unwrap();
        let params = SteadyParams {
            jammer_period: 16,
            jammer_radius_cells: 1.0,
            ..SteadyParams::default()
        };
        // Tick 0: first crossing just entered from the left.
        let disks = jammer_disks(&params, &sys, 0);
        assert_eq!(disks.len(), 1);
        assert!(disks[0].center().x < sys.area().min().x + 1e-9);
        // The crossing takes width/side + 2*radius/side = 8 + 2 ticks;
        // at tick 16 the first is gone and the second just entered.
        let disks = jammer_disks(&params, &sys, 16);
        assert_eq!(disks.len(), 1);
        // Period shorter than the crossing: two disks active at once.
        let fast = SteadyParams {
            jammer_period: 4,
            jammer_radius_cells: 1.0,
            ..SteadyParams::default()
        };
        assert!(jammer_disks(&fast, &sys, 8).len() >= 2);
        // Off: never any disk.
        let off = SteadyParams {
            jammer_period: 0,
            ..SteadyParams::default()
        };
        assert!(jammer_disks(&off, &sys, 5).is_empty());
    }

    #[test]
    fn jammer_strikes_register_as_failures() {
        let params = SteadyParams {
            ticks: 16,
            fault_rate: 0.0,
            arrival_rate: 0.0,
            jammer_period: 4,
            jammer_radius_cells: 2.0,
            ..SteadyParams::default()
        };
        let sr = Sr::new();
        let mut net = network(6, 6, 120, 11);
        let out = run_steady_trial(&params, &sr, &mut net, 5);
        assert!(out.failures > 0, "a radius-2-cell jammer must hit nodes");
        assert_eq!(out.arrivals, 0);
    }

    #[test]
    fn sr_holds_availability_with_ample_spares() {
        // Plenty of spares, gentle faults: SR repairs every hole within
        // the tick, so every tick meets the SLA and MTTR is 0.
        let params = SteadyParams {
            ticks: 32,
            fault_rate: 0.5,
            arrival_rate: 1.0,
            jammer_period: 0,
            ..SteadyParams::default()
        };
        let sr = Sr::new();
        let mut net = network(6, 6, 120, 21);
        let out = run_steady_trial(&params, &sr, &mut net, 8);
        assert_eq!(out.covered_ticks, out.ticks);
        assert_eq!(out.availability(), 1.0);
        if out.repaired_holes > 0 {
            assert_eq!(out.mttr(), Some(0.0));
            assert_eq!(out.hole_lifetimes.percentile(99.0).unwrap() as u64, 0);
        }
        assert!(out.energy_joules > 0.0);
        assert!(out.energy_rate() > 0.0);
        net.debug_invariants();
    }

    #[test]
    fn starved_network_reports_censored_holes() {
        // No arrivals, heavy faults, no spares to begin with: holes open
        // and stay open; availability collapses and the survivors are
        // right-censored.
        let params = SteadyParams {
            ticks: 24,
            fault_rate: 3.0,
            arrival_rate: 0.0,
            jammer_period: 0,
            coverage_sla: 1.0,
            ..SteadyParams::default()
        };
        let sr = Sr::new();
        let mut net = network(6, 6, 36, 2);
        let out = run_steady_trial(&params, &sr, &mut net, 31);
        assert!(out.censored_holes > 0);
        assert!(out.availability() < 1.0);
    }

    #[test]
    fn rotation_retires_weak_spares() {
        // Arrivals carry tiny batteries and idle duty is expensive:
        // spares decay fast, and the rotation policy retires them before
        // they die in place.
        let params = SteadyParams {
            ticks: 48,
            fault_rate: 0.2,
            arrival_rate: 3.0,
            arrival_battery: 0.01,
            jammer_period: 0,
            rotation: SpareRotation::RetireBelow { fraction: 0.5 },
            energy: EnergyModel {
                idle_cost_per_round: 0.002,
                ..EnergyModel::default()
            },
            ..SteadyParams::default()
        };
        let sr = Sr::new();
        let mut net = network(6, 6, 80, 4);
        let out = run_steady_trial(&params, &sr, &mut net, 12);
        assert!(out.retired_spares > 0, "{out:?}");
        net.debug_invariants();
    }

    #[test]
    fn battery_exhaustion_disables_nodes() {
        let params = SteadyParams {
            ticks: 16,
            fault_rate: 0.0,
            arrival_rate: 2.0,
            arrival_battery: 0.0005,
            jammer_period: 0,
            energy: EnergyModel {
                idle_cost_per_round: 0.001,
                ..EnergyModel::default()
            },
            ..SteadyParams::default()
        };
        let sr = Sr::new();
        let mut net = network(6, 6, 40, 6);
        let out = run_steady_trial(&params, &sr, &mut net, 19);
        assert!(out.battery_deaths > 0, "{out:?}");
        net.debug_invariants();
    }

    #[test]
    fn summary_folds_and_merges_lifetimes() {
        let params = SteadyParams {
            ticks: 24,
            fault_rate: 2.0,
            ..SteadyParams::default()
        };
        let sr = Sr::new();
        let mut summary = SteadySummary::new(&params);
        let mut whole = params.lifetime_histogram();
        for trial in 0..3u64 {
            let mut net = network(6, 6, 60, trial);
            let out = run_steady_trial(&params, &sr, &mut net, 100 + trial);
            whole.merge(&out.hole_lifetimes);
            summary.push(&out);
        }
        assert_eq!(summary.availability.summary().count(), 3);
        assert_eq!(summary.hole_lifetimes, whole);
        for p in [50.0, 99.0, 99.9] {
            assert_eq!(summary.lifetime_percentile(p), whole.percentile(p));
        }
        let json = summary.to_json(0.95).to_string();
        assert!(json.contains("\"availability\""));
        assert!(json.contains("\"hole_lifetime_p999\""));
        // An empty summary reports null percentiles, not a crash.
        let empty = SteadySummary::new(&params);
        let json = empty.to_json(0.95).to_string();
        assert!(json.contains("\"hole_lifetime_p50\":null"));
    }
}
