//! The perf ledger: criterion stand-in benchmarks for the hot paths,
//! with a checked-in baseline comparison gate.
//!
//! Two artifacts, written by `cargo run -p wsn-bench --bin perf -- run`:
//!
//! * `BENCH_core.json` — micro benchmarks of the word-level kernels and
//!   the arena reset: journal fold into a `BTreeSet` (the PR 2 pending
//!   set) vs the [`HoleSet`] word kernel, full `O(cells)` hole scans vs
//!   the bulk word copy, the masked-ring successor walk over the flat
//!   tables, and [`GridNetwork::reset_into`] vs a from-scratch build.
//!   The file also carries `kernel_speedup_min`, the acceptance ratio of
//!   the kernel refactor (word kernel ≥ 5× the `BTreeSet` fold on a
//!   256×256 mass-failure journal).
//! * `BENCH_campaign.json` — end-to-end campaign throughput: the full
//!   engine (deploy → repair → aggregate) on 64×64 and 256×256
//!   full-recovery matrices and a 1024×1024 single-replacement trial.
//!
//! Every entry is the criterion stand-in shape `{name, samples, min_ns,
//! mean_ns, max_ns}` that `replay bench` established for
//! `BENCH_replay.json`. `min_ns` is the comparison statistic: it is the
//! least noisy summary of a loop's cost on a busy machine.
//!
//! The **compare gate** (`perf compare`) parses a fresh `results/`
//! directory against the checked-in `baselines/` directory and fails
//! when any benchmark's `min_ns` regresses by more than the threshold
//! (25% by default). Benchmarks present only in the baseline (e.g. the
//! heavy grids that `--smoke` skips) are reported but never fail the
//! gate, so one baseline file serves both the full and the smoke run.

use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;
use std::time::Instant;

use wsn_grid::{deploy, GridNetwork, GridSystem, HoleSet, RegionShape};
use wsn_hamilton::MaskedCycle;
use wsn_simcore::{FaultEvent, SimRng};
use wsn_stats::JsonValue;

use crate::campaign::{
    build_trial_network, run_campaign, trial_stream_seed, CampaignConfig, CampaignMode, TrialArena,
};

/// Default regression threshold of the compare gate, in percent on
/// `min_ns`.
pub const DEFAULT_THRESHOLD_PERCENT: f64 = 25.0;

/// The ledger files `perf run` writes and `perf compare` checks. The
/// replay bench (`replay bench`) contributes `BENCH_replay.json` in the
/// same shape, the serve bench (`served bench`) `BENCH_serve.json`;
/// `BENCH_avail.json` carries the steady-state availability throughput.
pub const LEDGER_FILES: [&str; 6] = [
    "BENCH_core.json",
    "BENCH_campaign.json",
    "BENCH_replay.json",
    "BENCH_avail.json",
    "BENCH_event.json",
    "BENCH_serve.json",
];

/// Times one closure `samples` times and returns (min, mean, max) in
/// nanoseconds — the criterion stand-in shape.
fn time_ns(samples: usize, mut f: impl FnMut()) -> (f64, f64, f64) {
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_nanos() as f64);
    }
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let max = times.iter().copied().fold(0.0, f64::max);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    (min, mean, max)
}

fn bench_entry(name: &str, samples: usize, (min, mean, max): (f64, f64, f64)) -> JsonValue {
    JsonValue::obj([
        ("name", JsonValue::from(name)),
        ("samples", JsonValue::from(samples as u64)),
        ("min_ns", JsonValue::from(min)),
        ("mean_ns", JsonValue::from(mean)),
        ("max_ns", JsonValue::from(max)),
    ])
}

/// A deployment one node per cell, then a 15% random mass failure with
/// the change journal left hot — the post-fault state every hole
/// detector in the ledger folds.
fn mass_failure_state(cols: u16, rows: u16) -> GridNetwork {
    let sys = GridSystem::for_comm_range(cols, rows, 10.0).expect("bench grid is valid");
    let mut rng = SimRng::seed_from_u64(64_001);
    let pos = deploy::per_cell_exact(&sys, 1, &mut rng);
    let mut net = GridNetwork::new(sys, &pos);
    net.clear_changed_cells();
    let kill = net.nodes().len() * 15 / 100;
    net.apply_fault(&FaultEvent::KillRandomEnabled { count: kill }, &mut rng);
    net
}

/// The kernel duel on one grid: journal fold and bulk scan, each as the
/// PR 2 `BTreeSet` representation vs the word kernel. Returns the four
/// ledger entries plus the fold speedup (`btree min / kernel min`).
fn kernel_benches(cols: u16, rows: u16, samples: usize) -> (Vec<JsonValue>, f64) {
    let tag = format!("{cols}x{rows}");
    let net = mass_failure_state(cols, rows);
    let occ = net.occupancy();
    let cells = net.system().cell_count();
    assert!(
        !occ.changed_cells().is_empty(),
        "mass failure must journal changes"
    );

    // PR 2's hole detection: fold the change journal into a BTreeSet
    // pending set, then sweep it in ascending order.
    let journal_fold = time_ns(samples, || {
        let mut pending: BTreeSet<usize> = BTreeSet::new();
        for &c in occ.changed_cells() {
            let c = c as usize;
            if occ.is_vacant(c) {
                pending.insert(c);
            } else {
                pending.remove(&c);
            }
        }
        let mut acc = 0usize;
        for &c in &pending {
            acc = acc.wrapping_add(c);
        }
        assert!(acc > 0);
    });

    // This PR's hole detection: fold the same journal into the word
    // bitset, then sweep it with u64-block iteration.
    let mut holes = HoleSet::new(cells);
    let word_fold = time_ns(samples, || {
        holes.clear();
        holes.fold_changes(occ);
        let mut acc = 0usize;
        for c in holes.iter() {
            acc = acc.wrapping_add(c);
        }
        assert!(acc > 0);
    });

    // Bulk discovery from scratch: ordered set rebuild vs word copy.
    let scan_btree = time_ns(samples, || {
        let pending: BTreeSet<usize> = occ.iter_vacant().collect();
        assert!(!pending.is_empty());
    });
    let scan_words = time_ns(samples, || {
        holes.assign_vacant(occ);
        assert!(!holes.is_empty());
    });

    let speedup = if word_fold.0 > 0.0 {
        journal_fold.0 / word_fold.0
    } else {
        f64::INFINITY
    };
    let entries = vec![
        bench_entry(&format!("hole_fold_btree_{tag}"), samples, journal_fold),
        bench_entry(&format!("hole_fold_word_kernel_{tag}"), samples, word_fold),
        bench_entry(&format!("hole_scan_btree_{tag}"), samples, scan_btree),
        bench_entry(&format!("hole_scan_word_kernel_{tag}"), samples, scan_words),
    ];
    (entries, speedup)
}

/// Runs the core (kernel + arena) benchmarks.
///
/// The 64×64 kernel duel always runs, so the smoke profile shares every
/// benchmark name with the full baseline; the full run adds the 256×256
/// duel, whose fold speedup is the acceptance ratio the file reports as
/// `kernel_speedup_min`.
pub fn bench_core(smoke: bool) -> JsonValue {
    let samples = if smoke { 20 } else { 60 };
    let (mut entries, mut speedup) = kernel_benches(64, 64, samples);
    // The acceptance grid: full runs report the 256×256 ratio and
    // journal size; smoke reports the 64×64 ones.
    let acceptance_grid = if smoke { (64, 64) } else { (256, 256) };
    if !smoke {
        let (big, big_speedup) = kernel_benches(256, 256, samples);
        entries.extend(big);
        speedup = big_speedup;
    }
    let journal_entries = mass_failure_state(acceptance_grid.0, acceptance_grid.1)
        .changed_cells()
        .len();

    // Masked-ring successor queries over the flat tables: one full lap.
    let mask = RegionShape::Annulus.build_mask(64, 64);
    let ring = MaskedCycle::build(&mask).expect("annulus ring exists");
    let start = ring.order()[0];
    let ring_walk = time_ns(samples, || {
        let mut c = start;
        for _ in 0..ring.len() {
            c = ring.successor(c);
        }
        assert_eq!(c, start);
    });

    // Arena reuse: reset_into against a from-scratch trial build on the
    // 64×64 full-recovery deployment.
    let mode = CampaignMode::FullRecovery;
    let grid = (64, 64);
    let seed = trial_stream_seed(20_080_617, RegionShape::Full, grid, 100, 0);
    let build_samples = samples.min(20);
    let fresh_build = time_ns(build_samples, || {
        let net = build_trial_network(mode, 10.0, RegionShape::Full, grid, 100, seed);
        assert!(!net.nodes().is_empty());
    });
    let mut arena = TrialArena::new();
    arena.network(mode, 10.0, RegionShape::Full, grid, 100, seed); // warm the key
    let arena_reset = time_ns(build_samples, || {
        let net = arena.network(mode, 10.0, RegionShape::Full, grid, 100, seed);
        assert!(!net.nodes().is_empty());
    });

    entries.push(bench_entry("masked_ring_walk_64x64", samples, ring_walk));
    entries.push(bench_entry("trial_build_64x64", build_samples, fresh_build));
    entries.push(bench_entry("trial_reset_64x64", build_samples, arena_reset));
    JsonValue::obj([
        ("schema", JsonValue::from("wsn-bench-core/1")),
        (
            "mode",
            JsonValue::from(if smoke { "smoke" } else { "full" }),
        ),
        ("journal_entries", JsonValue::from(journal_entries)),
        ("kernel_speedup_min", JsonValue::from(speedup)),
        ("benchmarks", JsonValue::Arr(entries)),
    ])
}

/// One end-to-end campaign measurement: run the matrix, report total
/// wall time plus derived trial throughput.
fn campaign_entry(name: &str, samples: usize, cfg: &CampaignConfig) -> JsonValue {
    let trials = cfg.trial_count();
    let timing = time_ns(samples, || {
        let result = run_campaign(cfg).expect("ledger matrices are valid");
        assert_eq!(result.cells.len(), cfg.cell_count());
    });
    let mut entry = bench_entry(name, samples, timing);
    if let JsonValue::Obj(pairs) = &mut entry {
        pairs.push(("trials".into(), JsonValue::from(trials)));
        pairs.push((
            "trials_per_sec".into(),
            JsonValue::from(trials as f64 / (timing.1 / 1e9)),
        ));
    }
    entry
}

/// Runs the end-to-end campaign throughput benchmarks.
///
/// `smoke` keeps only the 64×64 matrix; the full ledger adds the
/// 256×256 full-recovery matrix and the 1024×1024 single-replacement
/// trial (the scale acceptance of the occupancy + kernel work: a
/// million-cell SR trial must complete inside the campaign engine).
pub fn bench_campaign(smoke: bool) -> JsonValue {
    // Fixed worker count: the ledger measures engine cost, not the CI
    // runner's core count.
    let base = CampaignConfig {
        name: "perf".into(),
        schemes: wsn_coverage::scheme::SchemeId::list(&["sr"]),
        regions: vec![RegionShape::Full],
        grids: vec![(64, 64)],
        targets: vec![100],
        seeds_per_cell: 2,
        workers: Some(2),
        ..CampaignConfig::paper()
    };
    let mut entries = vec![campaign_entry(
        "campaign_sr_full_recovery_64x64",
        if smoke { 3 } else { 5 },
        &base,
    )];
    if !smoke {
        let big = CampaignConfig {
            grids: vec![(256, 256)],
            seeds_per_cell: 1,
            ..base.clone()
        };
        entries.push(campaign_entry("campaign_sr_full_recovery_256x256", 2, &big));
        let xl = CampaignConfig {
            grids: vec![(1024, 1024)],
            targets: vec![100],
            seeds_per_cell: 1,
            mode: CampaignMode::SingleReplacement,
            ..base.clone()
        };
        entries.push(campaign_entry(
            "campaign_sr_single_replacement_1024x1024",
            1,
            &xl,
        ));
    }
    JsonValue::obj([
        ("schema", JsonValue::from("wsn-bench-campaign/1")),
        (
            "mode",
            JsonValue::from(if smoke { "smoke" } else { "full" }),
        ),
        ("benchmarks", JsonValue::Arr(entries)),
    ])
}

/// Runs the steady-state availability throughput benchmarks
/// (`BENCH_avail.json`): the open-system workload (Poisson faults +
/// arrivals + jammer, per-tick repair) driven through the campaign
/// engine. The 8×8 SR matrix always runs; the full ledger adds the
/// 64×64 matrix of the `avail` preset's workload.
pub fn bench_avail(smoke: bool) -> JsonValue {
    use crate::steady::SteadyParams;
    let base = CampaignConfig {
        name: "perf-avail".into(),
        schemes: wsn_coverage::scheme::SchemeId::list(&["sr"]),
        regions: vec![RegionShape::Full],
        grids: vec![(8, 8)],
        targets: vec![40],
        seeds_per_cell: 2,
        workers: Some(2),
        mode: CampaignMode::SteadyState,
        steady: SteadyParams {
            ticks: 32,
            jammer_period: 16,
            ..SteadyParams::default()
        },
        ..CampaignConfig::paper()
    };
    let mut entries = vec![campaign_entry(
        "steady_sr_8x8_32ticks",
        if smoke { 3 } else { 5 },
        &base,
    )];
    if !smoke {
        let big = CampaignConfig {
            grids: vec![(64, 64)],
            targets: vec![256],
            seeds_per_cell: 1,
            steady: SteadyParams {
                ticks: 32,
                fault_rate: 4.0,
                arrival_rate: 4.0,
                jammer_period: 16,
                jammer_radius_cells: 2.5,
                ..SteadyParams::default()
            },
            ..base.clone()
        };
        entries.push(campaign_entry("steady_sr_64x64_32ticks", 2, &big));
    }
    JsonValue::obj([
        ("schema", JsonValue::from("wsn-bench-avail/1")),
        (
            "mode",
            JsonValue::from(if smoke { "smoke" } else { "full" }),
        ),
        ("benchmarks", JsonValue::Arr(entries)),
    ])
}

/// Runs the event-engine throughput benchmarks (`BENCH_event.json`):
/// degraded-mode campaigns driven through the message-passing engine.
/// The 8×8 four-weather SR matrix always runs; the full ledger adds a
/// 16×16 matrix over the same weather grid plus a lossy three-scheme
/// matrix (the queue-drain and RNG-stream cost at AR's fan-out).
pub fn bench_event(smoke: bool) -> JsonValue {
    use crate::campaign::DegradedParams;
    let base = CampaignConfig {
        name: "perf-event".into(),
        schemes: wsn_coverage::scheme::SchemeId::list(&["sr"]),
        regions: vec![RegionShape::Full],
        grids: vec![(8, 8)],
        targets: vec![40],
        seeds_per_cell: 2,
        workers: Some(2),
        mode: CampaignMode::Degraded,
        degraded: DegradedParams {
            latencies: vec![1, 3],
            loss_ppms: vec![0, 300_000],
        },
        ..CampaignConfig::paper()
    };
    let mut entries = vec![campaign_entry(
        "degraded_sr_8x8_4weather",
        if smoke { 5 } else { 7 },
        &base,
    )];
    if !smoke {
        let big = CampaignConfig {
            grids: vec![(16, 16)],
            targets: vec![128],
            seeds_per_cell: 1,
            ..base.clone()
        };
        entries.push(campaign_entry("degraded_sr_16x16_4weather", 2, &big));
        let lossy = CampaignConfig {
            schemes: wsn_coverage::scheme::SchemeId::list(&["ar", "sr", "sr-sc"]),
            degraded: DegradedParams {
                latencies: vec![2],
                loss_ppms: vec![300_000],
            },
            ..base.clone()
        };
        entries.push(campaign_entry(
            "degraded_three_schemes_8x8_lossy",
            2,
            &lossy,
        ));
    }
    JsonValue::obj([
        ("schema", JsonValue::from("wsn-bench-event/1")),
        (
            "mode",
            JsonValue::from(if smoke { "smoke" } else { "full" }),
        ),
        ("benchmarks", JsonValue::Arr(entries)),
    ])
}

/// One benchmark's baseline-vs-fresh verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// The benchmark name (shared key of baseline and fresh entry).
    pub name: String,
    /// Baseline `min_ns`.
    pub base_min_ns: f64,
    /// Fresh `min_ns`.
    pub fresh_min_ns: f64,
    /// Signed delta in percent (`> 0` = fresh is slower).
    pub delta_percent: f64,
    /// Whether the delta exceeds the gate threshold.
    pub regressed: bool,
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}: {:.0}ns -> {:.0}ns ({:+.1}%)",
            if self.regressed { "REGRESSED" } else { "ok" },
            self.name,
            self.base_min_ns,
            self.fresh_min_ns,
            self.delta_percent
        )
    }
}

/// The compare gate's verdict for one ledger file.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReport {
    /// The ledger file name.
    pub file: String,
    /// Verdicts for every benchmark present on both sides.
    pub comparisons: Vec<Comparison>,
    /// Baseline benchmarks the fresh run did not produce (smoke runs
    /// legitimately skip the heavy grids — reported, never failing).
    pub missing: Vec<String>,
    /// Fresh benchmarks with no baseline counterpart. A new benchmark
    /// is ungated until its baseline is checked in, so these are
    /// surfaced as warnings rather than silently dropped.
    pub fresh_only: Vec<String>,
}

impl CompareReport {
    /// Names of the regressed benchmarks.
    pub fn regressions(&self) -> Vec<&str> {
        self.comparisons
            .iter()
            .filter(|c| c.regressed)
            .map(|c| c.name.as_str())
            .collect()
    }

    /// Whether the gate passes for this file.
    pub fn is_ok(&self) -> bool {
        self.comparisons.iter().all(|c| !c.regressed)
    }
}

fn benchmarks_of(doc: &JsonValue) -> Vec<(&str, f64)> {
    doc.get("benchmarks")
        .and_then(JsonValue::as_arr)
        .map(|entries| {
            entries
                .iter()
                .filter_map(|e| Some((e.get("name")?.as_str()?, e.get("min_ns")?.as_f64()?)))
                .collect()
        })
        .unwrap_or_default()
}

/// Compares one fresh ledger document against its baseline, flagging
/// every benchmark whose `min_ns` regressed by more than
/// `threshold_percent`. Matching is by benchmark name; entries only in
/// the baseline land in [`CompareReport::missing`], entries only in the
/// fresh run in [`CompareReport::fresh_only`].
pub fn compare_docs(
    file: &str,
    baseline: &JsonValue,
    fresh: &JsonValue,
    threshold_percent: f64,
) -> CompareReport {
    let base_entries = benchmarks_of(baseline);
    let fresh_entries = benchmarks_of(fresh);
    let mut comparisons = Vec::new();
    let mut missing = Vec::new();
    for &(name, base_min) in &base_entries {
        match fresh_entries.iter().find(|(n, _)| *n == name) {
            Some(&(_, fresh_min)) => {
                let delta_percent = if base_min > 0.0 {
                    (fresh_min / base_min - 1.0) * 100.0
                } else {
                    0.0
                };
                comparisons.push(Comparison {
                    name: name.to_owned(),
                    base_min_ns: base_min,
                    fresh_min_ns: fresh_min,
                    delta_percent,
                    regressed: delta_percent > threshold_percent,
                });
            }
            None => missing.push(name.to_owned()),
        }
    }
    let fresh_only = fresh_entries
        .iter()
        .filter(|(name, _)| !base_entries.iter().any(|(b, _)| b == name))
        .map(|&(name, _)| name.to_owned())
        .collect();
    CompareReport {
        file: file.to_owned(),
        comparisons,
        missing,
        fresh_only,
    }
}

/// Runs the compare gate over every ledger file present in **both**
/// directories, returning one report per file.
///
/// # Errors
///
/// A human-readable message when no ledger file is comparable (nothing
/// to gate on is a configuration bug, not a pass) or when a present
/// file fails to read or parse.
pub fn compare_dirs(
    baseline_dir: &Path,
    results_dir: &Path,
    threshold_percent: f64,
) -> Result<Vec<CompareReport>, String> {
    let mut reports = Vec::new();
    for file in LEDGER_FILES {
        let base_path = baseline_dir.join(file);
        let fresh_path = results_dir.join(file);
        if !base_path.exists() || !fresh_path.exists() {
            continue;
        }
        let load = |p: &Path| -> Result<JsonValue, String> {
            let text = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
            JsonValue::parse(&text).map_err(|e| format!("{}: {e}", p.display()))
        };
        reports.push(compare_docs(
            file,
            &load(&base_path)?,
            &load(&fresh_path)?,
            threshold_percent,
        ));
    }
    if reports.is_empty() {
        return Err(format!(
            "no ledger file present in both {} and {} — ran `perf run` and `replay bench` first?",
            baseline_dir.display(),
            results_dir.display()
        ));
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger(entries: &[(&str, f64)]) -> JsonValue {
        JsonValue::obj([
            ("schema", JsonValue::from("wsn-bench-core/1")),
            (
                "benchmarks",
                JsonValue::Arr(
                    entries
                        .iter()
                        .map(|&(name, min)| bench_entry(name, 3, (min, min, min)))
                        .collect(),
                ),
            ),
        ])
    }

    #[test]
    fn compare_flags_only_regressions_over_threshold() {
        let base = ledger(&[("a", 1000.0), ("b", 1000.0), ("c", 1000.0), ("gone", 5.0)]);
        let fresh = ledger(&[("a", 1200.0), ("b", 1300.0), ("c", 400.0), ("new", 7.0)]);
        let report = compare_docs("BENCH_core.json", &base, &fresh, 25.0);
        assert_eq!(report.comparisons.len(), 3);
        assert_eq!(report.regressions(), vec!["b"]);
        assert!(!report.is_ok());
        // Smoke-skipped entries are reported, not failed.
        assert_eq!(report.missing, vec!["gone".to_owned()]);
        // A benchmark without a baseline is surfaced, not silently
        // dropped — and never gates.
        assert_eq!(report.fresh_only, vec!["new".to_owned()]);
        let b = &report.comparisons[1];
        assert!((b.delta_percent - 30.0).abs() < 1e-9);
        assert!(b.to_string().starts_with("REGRESSED b:"), "{b}");
        // Exactly at threshold passes; the gate is strict-greater.
        let fresh = ledger(&[("a", 1250.0), ("b", 1000.0), ("c", 1000.0)]);
        assert!(compare_docs("x", &base, &fresh, 25.0).is_ok());
    }

    #[test]
    fn compare_reports_every_fresh_only_entry() {
        let base = ledger(&[("a", 1000.0)]);
        let fresh = ledger(&[("a", 1000.0), ("x", 1.0), ("y", 2.0)]);
        let report = compare_docs("BENCH_avail.json", &base, &fresh, 25.0);
        assert!(report.is_ok());
        assert_eq!(
            report.fresh_only,
            vec!["x".to_owned(), "y".to_owned()],
            "fresh-only entries must be warned about, in ledger order"
        );
        // Identical documents report nothing on either side.
        let clean = compare_docs("BENCH_avail.json", &base, &base, 25.0);
        assert!(clean.missing.is_empty() && clean.fresh_only.is_empty());
    }

    #[test]
    fn compare_round_trips_through_rendered_json() {
        let base = ledger(&[("k", 100.0)]);
        let fresh = JsonValue::parse(&ledger(&[("k", 90.0)]).to_file_string()).unwrap();
        let report = compare_docs("BENCH_core.json", &base, &fresh, 25.0);
        assert!(report.is_ok());
        assert!((report.comparisons[0].delta_percent + 10.0).abs() < 1e-9);
    }

    #[test]
    fn compare_dirs_requires_at_least_one_ledger_pair() {
        let dir = std::env::temp_dir().join("wsn_perf_compare_empty");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let err = compare_dirs(&dir, &dir, 25.0).unwrap_err();
        assert!(err.contains("no ledger file"), "{err}");
        // With one pair present, the gate runs.
        std::fs::write(
            dir.join("BENCH_core.json"),
            ledger(&[("k", 100.0)]).to_file_string(),
        )
        .unwrap();
        let reports = compare_dirs(&dir, &dir, 25.0).unwrap();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn smoke_avail_ledger_round_trips() {
        let doc = bench_avail(true);
        assert_eq!(
            doc.get("schema").and_then(JsonValue::as_str),
            Some("wsn-bench-avail/1")
        );
        let names: Vec<_> = benchmarks_of(&doc)
            .iter()
            .map(|(n, _)| n.to_string())
            .collect();
        assert_eq!(names, vec!["steady_sr_8x8_32ticks".to_owned()]);
        let parsed = JsonValue::parse(&doc.to_file_string()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn smoke_core_ledger_carries_the_kernel_contract() {
        let doc = bench_core(true);
        assert_eq!(
            doc.get("schema").and_then(JsonValue::as_str),
            Some("wsn-bench-core/1")
        );
        let speedup = doc
            .get("kernel_speedup_min")
            .and_then(JsonValue::as_f64)
            .expect("speedup field");
        // Unoptimized test builds still show the word kernel ahead; the
        // ≥5x acceptance figure is asserted on release runs (see the
        // perf binary), not here where the compiler hobbles both sides.
        assert!(speedup > 0.0, "speedup {speedup}");
        let names: Vec<_> = benchmarks_of(&doc)
            .iter()
            .map(|(n, _)| n.to_string())
            .collect();
        assert!(
            names.contains(&"hole_fold_word_kernel_64x64".to_owned()),
            "{names:?}"
        );
        assert!(names.contains(&"trial_reset_64x64".to_owned()), "{names:?}");
        // Parses back: the gate can read what the ledger writes.
        let parsed = JsonValue::parse(&doc.to_file_string()).unwrap();
        assert_eq!(parsed, doc);
    }
}
