//! The tentpole bench of the incremental occupancy engine: the same
//! monitor-and-repair loop on the 64×64 mass-failure scenario, with hole
//! discovery driven by the change-journal index versus the pre-index
//! full-grid scan. Both modes make byte-identical repairs (pinned by
//! `scenarios::tests`), so the gap is purely the discovery cost — the
//! acceptance bar is indexed ≥ 5× faster wall-clock.
//!
//! A second group runs full SR recovery (change-driven quiescence) on
//! grids the pre-index code paid O(cells) per round to even watch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wsn_bench::scenarios::{run_greedy_repair, OccupancyMode, Scenario};
use wsn_coverage::{Recovery, SrConfig};
use wsn_grid::{deploy, GridNetwork, GridSystem};
use wsn_simcore::SimRng;

fn bench_indexed_vs_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("occupancy_discovery_64x64");
    for scenario in [
        Scenario::mass_failure(64, 64),
        Scenario::fault_storm(64, 64),
        Scenario::jammer_walk(64, 64),
    ] {
        let base = scenario.build_network();
        g.bench_with_input(
            BenchmarkId::new("indexed", &scenario.name),
            &scenario,
            |b, s| b.iter(|| run_greedy_repair(black_box(s), base.clone(), OccupancyMode::Indexed)),
        );
        g.bench_with_input(
            BenchmarkId::new("full_scan", &scenario.name),
            &scenario,
            |b, s| {
                b.iter(|| run_greedy_repair(black_box(s), base.clone(), OccupancyMode::FullScan))
            },
        );
    }
    g.finish();
}

fn bench_large_grid_sr(c: &mut Criterion) {
    let mut g = c.benchmark_group("sr_recovery_large_grids");
    for &(cols, rows, holes) in &[(64u16, 64u16, 200usize), (128, 128, 500)] {
        let sys = GridSystem::for_comm_range(cols, rows, 10.0).unwrap();
        let mut rng = SimRng::seed_from_u64(2_008);
        let hole_cells: Vec<_> = {
            let mut cells: Vec<_> = sys.iter_coords().collect();
            // Deterministic spread: take every k-th cell.
            let stride = cells.len() / holes;
            cells = cells
                .into_iter()
                .step_by(stride.max(1))
                .take(holes)
                .collect();
            cells
        };
        let pos = deploy::with_holes(&sys, &hole_cells, 2, &mut rng);
        let net = GridNetwork::new(sys, &pos);
        g.bench_with_input(
            BenchmarkId::new("sr_adaptive", format!("{cols}x{rows}")),
            &net,
            |b, n| {
                b.iter(|| {
                    let mut rec =
                        Recovery::new(black_box(n.clone()), SrConfig::default().with_seed(9))
                            .unwrap();
                    rec.run_adaptive()
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_indexed_vs_scan, bench_large_grid_sr
}
criterion_main!(benches);
