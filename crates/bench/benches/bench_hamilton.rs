//! Criterion bench for topology construction (the structures behind
//! Figures 1(b) and 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wsn_grid::GridCoord;
use wsn_hamilton::{CycleTopology, DualPathCycle, HamiltonCycle};

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology_build");
    for &(cols, rows) in &[(4u16, 5u16), (16, 16), (64, 64), (128, 128)] {
        g.bench_with_input(
            BenchmarkId::new("cycle", format!("{cols}x{rows}")),
            &(cols, rows),
            |b, &(cols, rows)| b.iter(|| HamiltonCycle::build(black_box(cols), black_box(rows))),
        );
    }
    for &(cols, rows) in &[(5u16, 5u16), (15, 15), (63, 63), (127, 127)] {
        g.bench_with_input(
            BenchmarkId::new("dual_path", format!("{cols}x{rows}")),
            &(cols, rows),
            |b, &(cols, rows)| b.iter(|| DualPathCycle::build(black_box(cols), black_box(rows))),
        );
    }
    g.finish();
}

fn bench_queries(c: &mut Criterion) {
    let topo = CycleTopology::build(16, 16).unwrap();
    let dual = CycleTopology::build(15, 15).unwrap();
    let mut g = c.benchmark_group("topology_queries");
    g.bench_function("monitors_16x16", |b| {
        b.iter(|| topo.monitors(black_box(GridCoord::new(7, 9))))
    });
    g.bench_function("backward_from_16x16", |b| {
        b.iter(|| {
            topo.backward_from(
                black_box(GridCoord::new(7, 9)),
                black_box(GridCoord::new(3, 3)),
            )
        })
    });
    g.bench_function("backward_from_dual_15x15", |b| {
        b.iter(|| {
            dual.backward_from(
                black_box(GridCoord::new(7, 9)),
                black_box(GridCoord::new(3, 3)),
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_build, bench_queries
}
criterion_main!(benches);
