//! Ablation benches for the design choices called out in DESIGN.md §6:
//! spare-selection and head-election policies, and hole shape (uniform
//! random vs jammer-clustered).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wsn_coverage::{Recovery, SpareSelection, SrConfig};
use wsn_geometry::{Disk, Point2};
use wsn_grid::{deploy, GridNetwork, GridSystem, HeadElection};
use wsn_simcore::{FaultEvent, SimRng};

fn deployment(seed: u64) -> GridNetwork {
    let sys = GridSystem::for_comm_range(16, 16, 10.0).unwrap();
    let mut rng = SimRng::seed_from_u64(seed);
    let pos = deploy::uniform(&sys, 200 + sys.cell_count(), &mut rng);
    GridNetwork::new(sys, &pos)
}

fn bench_spare_selection(c: &mut Criterion) {
    let net = deployment(11);
    let mut g = c.benchmark_group("ablation_spare_selection");
    for (name, policy) in [
        ("closest_to_target", SpareSelection::ClosestToTarget),
        ("first_id", SpareSelection::FirstId),
        ("max_energy", SpareSelection::MaxEnergy),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &p| {
            b.iter(|| {
                Recovery::new(
                    black_box(net.clone()),
                    SrConfig::default().with_seed(11).with_spare_selection(p),
                )
                .unwrap()
                .run()
            })
        });
    }
    g.finish();
}

fn bench_election(c: &mut Criterion) {
    let net = deployment(13);
    let mut g = c.benchmark_group("ablation_head_election");
    for (name, policy) in [
        ("first_id", HeadElection::FirstId),
        ("max_energy", HeadElection::MaxEnergy),
        ("closest_to_center", HeadElection::ClosestToCenter),
        ("random", HeadElection::Random),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &p| {
            b.iter(|| {
                Recovery::new(
                    black_box(net.clone()),
                    SrConfig::default().with_seed(13).with_election(p),
                )
                .unwrap()
                .run()
            })
        });
    }
    g.finish();
}

fn bench_hole_shape(c: &mut Criterion) {
    // Uniform holes (the paper's methodology) vs a jammer strike
    // (clustered holes, the paper's cited attack [8]).
    let mut g = c.benchmark_group("ablation_hole_shape");
    let net = deployment(17);
    g.bench_function("uniform_random_holes", |b| {
        b.iter(|| {
            Recovery::new(black_box(net.clone()), SrConfig::default().with_seed(17))
                .unwrap()
                .run()
        })
    });
    let sys = *net.system();
    let strike = Disk::new(
        Point2::new(sys.area().width() / 2.0, sys.area().height() / 2.0),
        3.0 * sys.cell_side(),
    )
    .unwrap();
    g.bench_function("jammer_strike_holes", |b| {
        b.iter(|| {
            let mut jammed = net.clone();
            let mut rng = SimRng::seed_from_u64(17);
            jammed.apply_fault(&FaultEvent::KillRegion(strike), &mut rng);
            Recovery::new(black_box(jammed), SrConfig::default().with_seed(17))
                .unwrap()
                .run()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_spare_selection, bench_election, bench_hole_shape
}
criterion_main!(benches);
