//! Criterion bench for the analytical model (Figures 3 and 5).
//!
//! Benchmarks the Theorem 2 evaluation at the exact parameters the paper
//! plots: `M(19, N)` (Figure 3(a)/5(a)) and `M(255, N)` (Figure
//! 3(b)/5(b)), in both the paper's product form and the telescoped closed
//! form, plus whole-curve generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wsn_bench::figures;
use wsn_coverage::analysis;

fn bench_expected_moves(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_expected_moves");
    for &(l, n) in &[(19usize, 12usize), (255, 55), (255, 1000)] {
        g.bench_with_input(
            BenchmarkId::new("closed_form", format!("L{l}_N{n}")),
            &(l, n),
            |b, &(l, n)| b.iter(|| analysis::expected_moves(black_box(l), black_box(n))),
        );
        g.bench_with_input(
            BenchmarkId::new("paper_form_full_pmf", format!("L{l}_N{n}")),
            &(l, n),
            |b, &(l, n)| {
                b.iter(|| {
                    (1..=l)
                        .map(|i| i as f64 * analysis::p_moves_paper_form(l, n, i))
                        .sum::<f64>()
                })
            },
        );
    }
    g.finish();
}

fn bench_curves(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_fig5_curves");
    g.bench_function("fig3_both_grids", |b| b.iter(figures::fig3));
    g.bench_function("fig5_both_grids", |b| b.iter(figures::fig5));
    g.bench_function("fig7_overlay_totals", |b| {
        b.iter(|| figures::analytical_total_moves(black_box(255), black_box(200), black_box(40)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_expected_moves, bench_curves
}
criterion_main!(benches);
