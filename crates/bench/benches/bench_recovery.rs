//! Criterion bench for the Monte-Carlo comparison behind Figures 6–8:
//! full SR and AR recoveries on the paper's 16×16 deployment at three
//! representative spare levels (below, at, and above the N ≈ 55
//! crossover).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wsn_baselines::{ArConfig, ArRecovery};
use wsn_coverage::{Recovery, SrConfig};
use wsn_grid::{deploy, GridNetwork, GridSystem};
use wsn_simcore::SimRng;

fn deployment(n_target: usize, seed: u64) -> GridNetwork {
    let sys = GridSystem::for_comm_range(16, 16, 10.0).unwrap();
    let mut rng = SimRng::seed_from_u64(seed);
    let pos = deploy::uniform(&sys, n_target + sys.cell_count(), &mut rng);
    GridNetwork::new(sys, &pos)
}

fn bench_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_fig7_fig8_recovery_16x16");
    for &n in &[10usize, 55, 200, 1000] {
        let net = deployment(n, 42);
        g.bench_with_input(BenchmarkId::new("sr", n), &n, |b, _| {
            b.iter(|| {
                let mut rec =
                    Recovery::new(black_box(net.clone()), SrConfig::default().with_seed(42))
                        .unwrap();
                rec.run()
            })
        });
        g.bench_with_input(BenchmarkId::new("ar", n), &n, |b, _| {
            b.iter(|| {
                let mut rec =
                    ArRecovery::new(black_box(net.clone()), ArConfig::default().with_seed(42))
                        .unwrap();
                rec.run()
            })
        });
    }
    g.finish();
}

fn bench_deployment(c: &mut Criterion) {
    let mut g = c.benchmark_group("deployment_16x16");
    for &n in &[10usize, 1000] {
        g.bench_with_input(BenchmarkId::new("uniform", n), &n, |b, &n| {
            b.iter(|| deployment(black_box(n), black_box(7)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_recovery, bench_deployment
}
criterion_main!(benches);
