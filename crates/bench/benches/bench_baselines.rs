//! Criterion bench for the extension baselines (virtual force and the
//! SMART-style scans) against SR on the same single-hole scenario — the
//! quantitative version of the paper's §1 positioning ("quick convergence
//! but … many unnecessary node movements").

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wsn_baselines::{smart, vf, SmartConfig, VfConfig};
use wsn_coverage::{Recovery, SrConfig};
use wsn_grid::{deploy, GridCoord, GridNetwork, GridSystem};
use wsn_simcore::SimRng;

fn single_hole_network(seed: u64) -> GridNetwork {
    let sys = GridSystem::for_comm_range(8, 8, 10.0).unwrap();
    let mut rng = SimRng::seed_from_u64(seed);
    let pos = deploy::with_holes(&sys, &[GridCoord::new(4, 4)], 2, &mut rng);
    GridNetwork::new(sys, &pos)
}

fn bench_single_hole(c: &mut Criterion) {
    let net = single_hole_network(5);
    let mut g = c.benchmark_group("single_hole_8x8");
    g.bench_function("sr", |b| {
        b.iter(|| {
            Recovery::new(black_box(net.clone()), SrConfig::default().with_seed(5))
                .unwrap()
                .run()
        })
    });
    g.bench_function("smart_scan", |b| {
        b.iter(|| {
            let mut net = black_box(net.clone());
            smart::run(&mut net, &SmartConfig { seed: 5 })
        })
    });
    g.bench_function("virtual_force", |b| {
        b.iter(|| {
            let mut net = black_box(net.clone());
            vf::run(
                &mut net,
                &VfConfig {
                    seed: 5,
                    max_rounds: 60,
                    ..VfConfig::default()
                },
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_single_hole
}
criterion_main!(benches);
