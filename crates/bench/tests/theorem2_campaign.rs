//! Statistical validation of Theorem 2 with campaign machinery: the
//! campaign-estimated expected moves and moving distance of a single SR
//! replacement must bracket the paper's closed forms.
//!
//! A [`CampaignMode::SingleReplacement`] campaign reproduces Theorem 2's
//! exact setting — one hole, one node per remaining cell, exactly `N`
//! spares uniform over the occupied cells — so per-trial `moves` is a
//! direct sample of the theorem's distribution and its expectation is
//! `M(L, N) = Σ (j/L)^N` with `L = m·n − 1`. The campaign's streaming
//! aggregates give a 95% confidence interval per cell; the closed-form
//! prediction must fall inside it on both the 8×8 and 16×16 grids.
//!
//! The distance check exercises the paper's §4 estimate
//! `1.08 · r · M(L, N)`. The exact mean hop factor is ≈1.05·r (the
//! repo's `CellGeometry` docs quantify the paper's ~3% overshoot), so
//! the prediction sits slightly high inside the interval — which is the
//! point: with hundreds of seeds the CI is tight enough to be
//! meaningful and still brackets the paper's constant. Campaigns are
//! bit-deterministic per master seed (see `tests/determinism.rs`), so
//! these are fixed-fixture statistical checks, not flaky ones.

use wsn_bench::campaign::{run_campaign, CampaignConfig, CampaignMode, CampaignResult};
use wsn_coverage::{analysis, SchemeId};

fn single_replacement_campaign(
    cols: u16,
    rows: u16,
    targets: Vec<usize>,
    seeds: u64,
    master_seed: u64,
) -> CampaignResult {
    let cfg = CampaignConfig {
        name: format!("theorem2_{cols}x{rows}"),
        schemes: SchemeId::list(&["sr"]),
        grids: vec![(cols, rows)],
        targets,
        seeds_per_cell: seeds,
        master_seed,
        mode: CampaignMode::SingleReplacement,
        ..CampaignConfig::paper()
    };
    run_campaign(&cfg).expect("valid single-replacement matrix")
}

fn assert_theorem2_within_ci(res: &CampaignResult) {
    for cell in &res.cells {
        let (cols, rows, n) = (cell.cols, cell.rows, cell.n_target);
        assert_eq!(
            cell.covered_trials, cell.trials,
            "every replacement converges"
        );

        let l = cols as usize * rows as usize - 1;
        let r = res.config.comm_range / 5f64.sqrt();

        let moves_ci = cell.metric("moves").expect("moves stat").ci(0.95);
        let predicted_moves = analysis::expected_moves(l, n);
        assert!(
            moves_ci.contains(predicted_moves),
            "{cols}x{rows} N={n}: M({l}, {n}) = {predicted_moves:.4} outside {moves_ci}"
        );

        let dist_ci = cell.metric("distance").expect("distance stat").ci(0.95);
        let predicted_dist = analysis::expected_distance(l, n, r);
        assert!(
            dist_ci.contains(predicted_dist),
            "{cols}x{rows} N={n}: 1.08·r·M = {predicted_dist:.4} outside {dist_ci}"
        );

        // Sanity: the interval is actually informative (narrower than
        // ±25% of the prediction), not vacuously wide.
        assert!(
            moves_ci.half_width < predicted_moves * 0.25,
            "{cols}x{rows} N={n}: CI too wide to mean anything: {moves_ci}"
        );
    }
}

#[test]
fn theorem_2_within_95ci_on_8x8() {
    // L = 63; N = 20 and 40 keep expected walks at ~3.5 and ~2.1 hops.
    let res = single_replacement_campaign(8, 8, vec![20, 40], 250, 7);
    assert_theorem2_within_ci(&res);
}

#[test]
fn theorem_2_within_95ci_on_16x16() {
    // L = 255 (Figure 3(b)'s grid); N = 55 is the paper's crossover N.
    let res = single_replacement_campaign(16, 16, vec![55, 200], 250, 20_080_617);
    assert_theorem2_within_ci(&res);
}

#[test]
fn theorem_2_ci_narrows_with_more_seeds() {
    // The statistical machinery itself: nine times the seeds shrinks
    // the interval by about a factor of three.
    let small = single_replacement_campaign(8, 8, vec![20], 50, 7);
    let large = single_replacement_campaign(8, 8, vec![20], 450, 7);
    let hw_small = small.cells[0].metric("moves").unwrap().ci(0.95).half_width;
    let hw_large = large.cells[0].metric("moves").unwrap().ci(0.95).half_width;
    assert!(
        hw_large < hw_small * 0.7,
        "CI must narrow: {hw_small} -> {hw_large}"
    );
}
