//! Wire-form round-trips for [`CampaignConfig`]: `parse ∘ serialize`
//! must be the identity for every campaign mode.
//!
//! The `served` daemon accepts `wsn-campaign/3` config JSON over
//! `POST /jobs` and re-reads the same block out of its own checkpoints,
//! so the wire codec cannot be lossy: a config that changes shape on
//! the way through the daemon would silently run a different
//! experiment. The property test below sweeps mode-consistent configs
//! across all four modes (closed full-recovery, masked regions,
//! steady-state, degraded-network) and asserts the parsed config equals
//! the original structurally — which, because artifacts serialize the
//! config back out, also pins the byte-level round-trip.

use proptest::prelude::*;
use wsn_bench::campaign::{CampaignConfig, CampaignMode, DegradedParams};
use wsn_bench::steady::{SpareRotation, SteadyParams};
use wsn_coverage::SchemeId;
use wsn_grid::RegionShape;

/// A mode-consistent config: `steady`/`degraded` keep their defaults
/// outside their modes (the wire form omits those blocks there, and
/// the parser restores defaults), and `workers` stays `None` (never on
/// the wire by design).
#[allow(clippy::too_many_arguments)]
fn wire_config(
    mode_idx: usize,
    scheme_idx: usize,
    region_idx: usize,
    cols: u16,
    rows: u16,
    target: usize,
    seeds: u64,
    master: u64,
    comm_range: f64,
    rate: f64,
    ticks: u64,
    latency: u32,
    loss_ppm: u32,
) -> CampaignConfig {
    let mode = [
        CampaignMode::FullRecovery,
        CampaignMode::SingleReplacement,
        CampaignMode::SteadyState,
        CampaignMode::Degraded,
    ][mode_idx % 4];
    // SingleReplacement is SR-only by validation; keep the generated
    // matrix honest so these configs could actually run.
    let schemes = if mode == CampaignMode::SingleReplacement {
        SchemeId::list(&["sr"])
    } else {
        [
            SchemeId::list(&["ar", "sr"]),
            SchemeId::list(&["sr"]),
            SchemeId::list(&["ar", "sr", "sr-sc"]),
        ][scheme_idx % 3]
            .clone()
    };
    let regions = [
        vec![RegionShape::Full],
        vec![RegionShape::Full, RegionShape::LShape],
        vec![RegionShape::Annulus, RegionShape::Corridor],
        RegionShape::ALL.to_vec(),
    ][region_idx % 4]
        .clone();
    let steady = if mode == CampaignMode::SteadyState {
        SteadyParams {
            ticks,
            fault_rate: rate,
            arrival_rate: rate * 0.5,
            rotation: if ticks.is_multiple_of(2) {
                SpareRotation::Off
            } else {
                SpareRotation::RetireBelow {
                    fraction: rate.clamp(0.05, 1.0),
                }
            },
            ..SteadyParams::default()
        }
    } else {
        SteadyParams::default()
    };
    let degraded = if mode == CampaignMode::Degraded {
        DegradedParams {
            latencies: vec![1, latency],
            loss_ppms: vec![0, loss_ppm],
        }
    } else {
        DegradedParams::default()
    };
    CampaignConfig {
        name: format!("wire{mode_idx}"),
        schemes,
        regions,
        grids: vec![(cols, rows)],
        targets: vec![target, target + 7],
        comm_range,
        seeds_per_cell: seeds,
        master_seed: master,
        mode,
        steady,
        degraded,
        ci_level: [0.90, 0.95, 0.99][mode_idx % 3],
        workers: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn config_wire_round_trips_for_all_modes(
        mode_idx in 0usize..4,
        scheme_idx in 0usize..3,
        region_idx in 0usize..4,
        cols in 2u16..40,
        rows in 2u16..40,
        target in 1usize..2000,
        seeds in 1u64..500,
        // Capped below 2^53: JSON numbers are f64 on this wire, and the
        // parser rejects (rather than rounds) anything bigger.
        master in 0u64..9_007_199_254_740_992,
        comm_range in 0.5f64..250.0,
        rate in 0.01f64..8.0,
        ticks in 1u64..4096,
        latency in 2u32..64,
        loss_ppm in 1u32..1_000_000,
    ) {
        let cfg = wire_config(
            mode_idx, scheme_idx, region_idx, cols, rows, target, seeds,
            master, comm_range, rate, ticks, latency, loss_ppm,
        );
        let text = cfg.to_json().to_string();
        let parsed = CampaignConfig::from_json_str(&text)
            .expect("serialized config must parse");
        prop_assert_eq!(&parsed, &cfg);
        // And the re-serialization is byte-identical, so artifacts that
        // embed a parsed config echo the submitted bytes.
        prop_assert_eq!(parsed.to_json().to_string(), text);
    }
}

#[test]
fn every_preset_round_trips() {
    for (label, cfg) in [
        ("paper", CampaignConfig::paper()),
        ("quick", CampaignConfig::quick()),
        ("smoke", CampaignConfig::smoke()),
        ("masked", CampaignConfig::masked()),
        ("masked_smoke", CampaignConfig::masked_smoke()),
        ("avail", CampaignConfig::avail()),
        ("avail_smoke", CampaignConfig::avail_smoke()),
        ("degraded", CampaignConfig::degraded()),
        ("degraded_smoke", CampaignConfig::degraded_smoke()),
    ] {
        let parsed = CampaignConfig::from_json_str(&cfg.to_json().to_string())
            .unwrap_or_else(|e| panic!("preset '{label}' failed to parse: {e}"));
        // `workers` is an execution knob, never on the wire.
        let mut expect = cfg;
        expect.workers = None;
        assert_eq!(parsed, expect, "preset '{label}' changed across the wire");
    }
}

#[test]
fn parser_rejects_malformed_configs() {
    let good = CampaignConfig::smoke().to_json().to_string();
    assert!(CampaignConfig::from_json_str(&good).is_ok());
    let cases: &[(&str, &str)] = &[
        ("not json at all", "{nope"),
        ("unknown mode", &good.replace("full_recovery", "sideways")),
        ("unknown region", &good.replace("\"full\"", "\"hexagon\"")),
        ("bad scheme id", &good.replace("\"sr\"", "\"NOT AN ID\"")),
        (
            "fractional seeds",
            &good.replace("\"seeds_per_cell\":", "\"seeds_per_cell\":0.5,\"x\":"),
        ),
        (
            "oversized master seed",
            &good.replace("\"master_seed\":", "\"master_seed\":1e300,\"x\":"),
        ),
        ("missing name", &good.replace("\"name\"", "\"nom\"")),
    ];
    for (label, text) in cases {
        assert!(
            CampaignConfig::from_json_str(text).is_err(),
            "{label}: expected a parse error"
        );
    }
    // A grid pair with the wrong arity is shape-invalid even though
    // every element is a fine integer.
    let arity = good.replace("[8,8]", "[8,8,8]");
    assert!(CampaignConfig::from_json_str(&arity).is_err());
}
