//! Differential conformance: for every scheme that implements both
//! drivers, the classic idle-confirmation loop ([`RoundRunner::run`])
//! and the change-driven fast path ([`RoundRunner::run_change_driven`])
//! must do identical work.
//!
//! `run` observes quiescence by executing no-op rounds until an idle
//! window elapses; `run_change_driven` reads the protocol's own
//! pending-work index ([`wsn_simcore::ChangeDrivenProtocol`]) and stops
//! the moment it is empty. Because both drivers execute the identical
//! round prefix (same round indices, same RNG draws), every cost counter
//! must agree — the *only* legitimate divergence is `Metrics::rounds`,
//! which by design excludes the trailing no-op rounds on the fast path.
//! This suite pins that equivalence for SR ([`Recovery`]) and AR
//! ([`ArRecovery`]) across a seeded grid of recoverable scenarios:
//! single-cycle and dual-path grids, scattered holes, and mid-run fault
//! injection.
//!
//! [`RoundRunner::run`]: wsn_simcore::RoundRunner::run
//! [`RoundRunner::run_change_driven`]: wsn_simcore::RoundRunner::run_change_driven

use std::path::Path;

use wsn_baselines::{builtins, ArConfig, ArRecovery};
use wsn_bench::replay::{self, ReplaySpec};
use wsn_coverage::scheme::{DriveMode, NetworkSpec};
use wsn_coverage::{Recovery, SrConfig};
use wsn_grid::{deploy, GridCoord, GridNetwork, GridSystem, RegionMask, RegionShape};
use wsn_simcore::{FaultEvent, FaultPlan, Metrics, SimRng};

/// The scenario grid: `(cols, rows, holes, per_cell)` per entry, each
/// run under several seeds. Deployments are dense enough that both
/// schemes reach full coverage, so the pending-hole index empties and
/// the comparison covers every counter (including `cells_scanned`).
fn scenario_grid() -> Vec<(u16, u16, usize, usize)> {
    vec![
        (4, 4, 1, 2),
        (6, 6, 2, 2),
        (6, 6, 4, 3),
        (8, 8, 3, 2),
        (5, 5, 2, 2), // dual-path structure (odd x odd)
        (7, 5, 3, 3), // dual-path, non-square
    ]
}

/// Deterministically punches `holes` distinct cells out of a
/// `per_cell`-dense deployment.
fn seeded_network(cols: u16, rows: u16, holes: usize, per_cell: usize, seed: u64) -> GridNetwork {
    let sys = GridSystem::for_comm_range(cols, rows, 10.0).expect("valid dims");
    let mut rng = SimRng::seed_from_u64(seed);
    let hole_coords: Vec<GridCoord> = rng
        .sample_indices(sys.cell_count(), holes)
        .into_iter()
        .map(|i| sys.coord_of(i))
        .collect();
    let pos = deploy::with_holes(&sys, &hole_coords, per_cell, &mut rng);
    GridNetwork::new(sys, &pos)
}

/// Strips the one field the two drivers legitimately disagree on.
fn costs(m: Metrics) -> Metrics {
    m.ignoring_rounds()
}

/// On-divergence reporting: instead of a bare failed assert, re-record
/// both drivers traced through the replay harness, drop paired
/// `replay_<coord>.trace` artifacts (plus the ddmin-shrunk fault
/// schedule when one is involved) into `results/`, and panic with the
/// first divergent event and the artifact paths.
fn conformance_divergence(
    tag: &str,
    scheme: &str,
    grid: (u16, u16),
    holes: usize,
    per_cell: usize,
    seed: u64,
    plan: FaultPlan,
) -> String {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let left = ReplaySpec::scenario(scheme, grid, holes, per_cell, seed).with_plan(plan);
    let right = left.clone().with_drive(DriveMode::ChangeDriven);
    replay::divergence_message(&dir, tag, &left, &right)
        .unwrap_or_else(|e| format!("{tag}: drivers diverged (and replay reporting failed: {e})"))
}

#[test]
fn sr_change_driven_run_is_conformant_across_the_scenario_grid() {
    for (cols, rows, holes, per_cell) in scenario_grid() {
        for seed in [11u64, 47, 1009] {
            let mk = || seeded_network(cols, rows, holes, per_cell, seed);
            let classic = Recovery::new(mk(), SrConfig::default().with_seed(seed))
                .expect("topology exists")
                .run();
            let adaptive = Recovery::new(mk(), SrConfig::default().with_seed(seed))
                .expect("topology exists")
                .run_adaptive();
            let tag = format!("SR {cols}x{rows} holes={holes} seed={seed}");
            assert!(classic.fully_covered, "{tag}: classic must recover");
            assert!(adaptive.fully_covered, "{tag}: adaptive must recover");
            if costs(classic.metrics) != costs(adaptive.metrics) {
                panic!(
                    "{}",
                    conformance_divergence(
                        &tag,
                        "sr",
                        (cols, rows),
                        holes,
                        per_cell,
                        seed,
                        FaultPlan::new()
                    )
                );
            }
            assert_eq!(
                classic.processes, adaptive.processes,
                "{tag}: per-process summaries must be identical"
            );
            assert!(
                adaptive.run.rounds <= classic.run.rounds,
                "{tag}: the fast path never runs longer"
            );
        }
    }
}

#[test]
fn ar_change_driven_run_is_conformant_across_the_scenario_grid() {
    for (cols, rows, holes, per_cell) in scenario_grid() {
        for seed in [11u64, 47, 1009] {
            let mk = || seeded_network(cols, rows, holes, per_cell, seed);
            let classic = ArRecovery::new(mk(), ArConfig::default().with_seed(seed))
                .expect("valid round cap")
                .run();
            let adaptive = ArRecovery::new(mk(), ArConfig::default().with_seed(seed))
                .expect("valid round cap")
                .run_adaptive();
            let tag = format!("AR {cols}x{rows} holes={holes} seed={seed}");
            assert!(classic.fully_covered, "{tag}: classic must recover");
            assert!(adaptive.fully_covered, "{tag}: adaptive must recover");
            if costs(classic.metrics) != costs(adaptive.metrics) {
                panic!(
                    "{}",
                    conformance_divergence(
                        &tag,
                        "ar",
                        (cols, rows),
                        holes,
                        per_cell,
                        seed,
                        FaultPlan::new()
                    )
                );
            }
            assert_eq!(
                classic.final_stats.vacant, adaptive.final_stats.vacant,
                "{tag}: final occupancy must agree"
            );
            assert!(
                adaptive.run.rounds <= classic.run.rounds,
                "{tag}: the fast path never runs longer"
            );
        }
    }
}

#[test]
fn sr_conformance_holds_under_mid_run_faults() {
    // The pending-work check must keep the change-driven run alive
    // through scheduled faults: killing a whole cell at round 3 (after
    // the initial holes are already repaired) re-opens recovery, and
    // both drivers must bill the identical work.
    for seed in [5u64, 21] {
        let mk = || {
            let net = seeded_network(6, 6, 1, 2, seed);
            let victims = net
                .members(GridCoord::new(3, 3))
                .expect("in bounds")
                .to_vec();
            (net, victims)
        };
        let (net_c, victims_c) = mk();
        let cfg_c = SrConfig::default()
            .with_seed(seed)
            .with_fault_plan(FaultPlan::new().at(3, FaultEvent::KillNodes(victims_c)));
        let classic = Recovery::new(net_c, cfg_c).expect("topology").run();
        let (net_a, victims_a) = mk();
        let cfg_a = SrConfig::default()
            .with_seed(seed)
            .with_fault_plan(FaultPlan::new().at(3, FaultEvent::KillNodes(victims_a)));
        let adaptive = Recovery::new(net_a, cfg_a)
            .expect("topology")
            .run_adaptive();
        assert!(
            classic.fully_covered && adaptive.fully_covered,
            "seed {seed}"
        );
        if costs(classic.metrics) != costs(adaptive.metrics) {
            // This comparison involves a fault schedule, so the
            // divergence report also ships a ddmin-shrunk version of it.
            let (_, victims) = mk();
            panic!(
                "{}",
                conformance_divergence(
                    &format!("SR mid-run faults seed={seed}"),
                    "sr",
                    (6, 6),
                    1,
                    2,
                    seed,
                    FaultPlan::new().at(3, FaultEvent::KillNodes(victims))
                )
            );
        }
        // The fault round itself must have been executed by both.
        assert!(adaptive.metrics.rounds > 3, "seed {seed}");
    }
}

#[test]
fn every_registered_scheme_drives_generically_through_the_registry() {
    // The uniform API: no per-scheme code in this loop at all. Every
    // registered scheme runs classic on a full region; schemes that
    // advertise the change-driven driver must do identical work on it,
    // and schemes that don't must refuse it without touching the
    // network.
    let registry = builtins();
    let ids: Vec<String> = registry.ids().iter().map(ToString::to_string).collect();
    assert_eq!(ids, ["sr", "sr-sc", "ar", "vf", "smart"]);
    for scheme in registry.iter() {
        for seed in [11u64, 47] {
            // 8x8 keeps every built-in in-spec (SR-SC needs an even side).
            let mk = || seeded_network(8, 8, 3, 2, seed);
            let tag = format!("{} seed={seed}", scheme.id());
            scheme
                .supports(&NetworkSpec::full(8, 8))
                .unwrap_or_else(|e| panic!("{tag}: {e}"));
            let mut net = mk();
            let before = net.stats();
            let classic = scheme
                .run(&mut net, seed, DriveMode::Classic)
                .unwrap_or_else(|e| panic!("{tag}: {e}"));
            // The &mut contract: paired before/after inspection without
            // cloning.
            assert_eq!(classic.initial_stats, before, "{tag}");
            assert_eq!(classic.final_stats, net.stats(), "{tag}");
            net.debug_invariants();
            if scheme.supports_change_driven() {
                let mut net2 = mk();
                let adaptive = scheme
                    .run(&mut net2, seed, DriveMode::ChangeDriven)
                    .unwrap_or_else(|e| panic!("{tag}: {e}"));
                if costs(classic.metrics) != costs(adaptive.metrics) {
                    panic!(
                        "{}",
                        conformance_divergence(
                            &tag,
                            scheme.id(),
                            (8, 8),
                            3,
                            2,
                            seed,
                            FaultPlan::new()
                        )
                    );
                }
                assert!(adaptive.run.rounds <= classic.run.rounds, "{tag}");
            } else {
                let mut net2 = mk();
                let untouched = net2.stats();
                assert!(
                    scheme
                        .run(&mut net2, seed, DriveMode::ChangeDriven)
                        .is_err(),
                    "{tag}: unsupported mode must be refused"
                );
                assert_eq!(net2.stats(), untouched, "{tag}: refusal must not mutate");
            }
        }
    }
}

#[test]
fn supports_is_honored_on_masked_regions() {
    let registry = builtins();
    // Every built-in supports the masked L-shape (the virtual ring
    // serves SR/SR-SC; AR/VF/SMART are structure-free) and actually
    // drives it without placing nodes in disabled cells.
    let mask = RegionMask::l_shape(8, 8);
    let spec = NetworkSpec::masked(mask.clone());
    for scheme in registry.iter() {
        scheme
            .supports(&spec)
            .unwrap_or_else(|e| panic!("{}: {e}", scheme.id()));
        let sys = GridSystem::for_comm_range(8, 8, 10.0).unwrap();
        let mut rng = SimRng::seed_from_u64(5);
        let enabled: Vec<GridCoord> = mask.iter_enabled().collect();
        let holes = vec![enabled[7]];
        let pos = deploy::with_holes_masked(&sys, &mask, &holes, 2, &mut rng);
        let mut net = GridNetwork::with_mask(sys, mask.clone(), &pos).unwrap();
        let report = scheme.run(&mut net, 5, DriveMode::Classic).unwrap();
        assert_eq!(report.final_stats, net.stats(), "{}", scheme.id());
        net.debug_invariants();
        for node in net.nodes() {
            if node.status().is_enabled() {
                let cell = sys.cell_of(node.position()).unwrap();
                assert!(
                    mask.is_enabled(cell),
                    "{}: node in disabled {cell}",
                    scheme.id()
                );
            }
        }
    }
    // ...and a region a scheme cannot serve is refused up front: odd x odd
    // full grids have no single Hamilton cycle for SR-SC, and 1xN strips
    // have no replacement structure for SR at all.
    let sr_sc = registry.get("sr-sc").unwrap();
    assert!(sr_sc.supports(&NetworkSpec::full(5, 5)).is_err());
    let sr = registry.get("sr").unwrap();
    assert!(sr.supports(&NetworkSpec::full(1, 4)).is_err());
    // Structure-free schemes shrug at both.
    for id in ["ar", "vf", "smart"] {
        let scheme = registry.get(id).unwrap();
        assert!(scheme.supports(&NetworkSpec::full(5, 5)).is_ok(), "{id}");
        for shape in RegionShape::IRREGULAR {
            let spec = NetworkSpec::masked(shape.build_mask(10, 10));
            assert!(scheme.supports(&spec).is_ok(), "{id}@{shape}");
        }
    }
}

#[test]
fn rounds_is_the_only_divergent_field() {
    // Document the exact shape of the divergence: put the classic
    // driver's round count into the adaptive metrics and the two become
    // fully equal — nothing else drifted.
    let seed = 47;
    let mk = || seeded_network(8, 8, 3, 2, seed);
    let classic = Recovery::new(mk(), SrConfig::default().with_seed(seed))
        .expect("topology")
        .run();
    let adaptive = Recovery::new(mk(), SrConfig::default().with_seed(seed))
        .expect("topology")
        .run_adaptive();
    assert_ne!(classic.metrics, adaptive.metrics, "rounds must differ");
    let mut patched = adaptive.metrics;
    patched.rounds = classic.metrics.rounds;
    assert_eq!(classic.metrics, patched);
}
