//! Differential conformance: for every scheme that implements both
//! drivers, the classic idle-confirmation loop ([`RoundRunner::run`])
//! and the change-driven fast path ([`RoundRunner::run_change_driven`])
//! must do identical work.
//!
//! `run` observes quiescence by executing no-op rounds until an idle
//! window elapses; `run_change_driven` reads the protocol's own
//! pending-work index ([`wsn_simcore::ChangeDrivenProtocol`]) and stops
//! the moment it is empty. Because both drivers execute the identical
//! round prefix (same round indices, same RNG draws), every cost counter
//! must agree — the *only* legitimate divergence is `Metrics::rounds`,
//! which by design excludes the trailing no-op rounds on the fast path.
//! This suite pins that equivalence for SR ([`Recovery`]) and AR
//! ([`ArRecovery`]) across a seeded grid of recoverable scenarios:
//! single-cycle and dual-path grids, scattered holes, and mid-run fault
//! injection.
//!
//! [`RoundRunner::run`]: wsn_simcore::RoundRunner::run
//! [`RoundRunner::run_change_driven`]: wsn_simcore::RoundRunner::run_change_driven

use wsn_baselines::{ArConfig, ArRecovery};
use wsn_coverage::{Recovery, SrConfig};
use wsn_grid::{deploy, GridCoord, GridNetwork, GridSystem};
use wsn_simcore::{FaultEvent, FaultPlan, Metrics, SimRng};

/// The scenario grid: `(cols, rows, holes, per_cell)` per entry, each
/// run under several seeds. Deployments are dense enough that both
/// schemes reach full coverage, so the pending-hole index empties and
/// the comparison covers every counter (including `cells_scanned`).
fn scenario_grid() -> Vec<(u16, u16, usize, usize)> {
    vec![
        (4, 4, 1, 2),
        (6, 6, 2, 2),
        (6, 6, 4, 3),
        (8, 8, 3, 2),
        (5, 5, 2, 2), // dual-path structure (odd x odd)
        (7, 5, 3, 3), // dual-path, non-square
    ]
}

/// Deterministically punches `holes` distinct cells out of a
/// `per_cell`-dense deployment.
fn seeded_network(cols: u16, rows: u16, holes: usize, per_cell: usize, seed: u64) -> GridNetwork {
    let sys = GridSystem::for_comm_range(cols, rows, 10.0).expect("valid dims");
    let mut rng = SimRng::seed_from_u64(seed);
    let hole_coords: Vec<GridCoord> = rng
        .sample_indices(sys.cell_count(), holes)
        .into_iter()
        .map(|i| sys.coord_of(i))
        .collect();
    let pos = deploy::with_holes(&sys, &hole_coords, per_cell, &mut rng);
    GridNetwork::new(sys, &pos)
}

/// Strips the one field the two drivers legitimately disagree on.
fn costs(m: Metrics) -> Metrics {
    m.ignoring_rounds()
}

#[test]
fn sr_change_driven_run_is_conformant_across_the_scenario_grid() {
    for (cols, rows, holes, per_cell) in scenario_grid() {
        for seed in [11u64, 47, 1009] {
            let mk = || seeded_network(cols, rows, holes, per_cell, seed);
            let classic = Recovery::new(mk(), SrConfig::default().with_seed(seed))
                .expect("topology exists")
                .run();
            let adaptive = Recovery::new(mk(), SrConfig::default().with_seed(seed))
                .expect("topology exists")
                .run_adaptive();
            let tag = format!("SR {cols}x{rows} holes={holes} seed={seed}");
            assert!(classic.fully_covered, "{tag}: classic must recover");
            assert!(adaptive.fully_covered, "{tag}: adaptive must recover");
            assert_eq!(
                costs(classic.metrics),
                costs(adaptive.metrics),
                "{tag}: cost counters must be identical"
            );
            assert_eq!(
                classic.processes, adaptive.processes,
                "{tag}: per-process summaries must be identical"
            );
            assert!(
                adaptive.run.rounds <= classic.run.rounds,
                "{tag}: the fast path never runs longer"
            );
        }
    }
}

#[test]
fn ar_change_driven_run_is_conformant_across_the_scenario_grid() {
    for (cols, rows, holes, per_cell) in scenario_grid() {
        for seed in [11u64, 47, 1009] {
            let mk = || seeded_network(cols, rows, holes, per_cell, seed);
            let classic = ArRecovery::new(mk(), ArConfig::default().with_seed(seed))
                .expect("valid round cap")
                .run();
            let adaptive = ArRecovery::new(mk(), ArConfig::default().with_seed(seed))
                .expect("valid round cap")
                .run_adaptive();
            let tag = format!("AR {cols}x{rows} holes={holes} seed={seed}");
            assert!(classic.fully_covered, "{tag}: classic must recover");
            assert!(adaptive.fully_covered, "{tag}: adaptive must recover");
            assert_eq!(
                costs(classic.metrics),
                costs(adaptive.metrics),
                "{tag}: cost counters must be identical"
            );
            assert_eq!(
                classic.final_stats.vacant, adaptive.final_stats.vacant,
                "{tag}: final occupancy must agree"
            );
            assert!(
                adaptive.run.rounds <= classic.run.rounds,
                "{tag}: the fast path never runs longer"
            );
        }
    }
}

#[test]
fn sr_conformance_holds_under_mid_run_faults() {
    // The pending-work check must keep the change-driven run alive
    // through scheduled faults: killing a whole cell at round 3 (after
    // the initial holes are already repaired) re-opens recovery, and
    // both drivers must bill the identical work.
    for seed in [5u64, 21] {
        let mk = || {
            let net = seeded_network(6, 6, 1, 2, seed);
            let victims = net
                .members(GridCoord::new(3, 3))
                .expect("in bounds")
                .to_vec();
            (net, victims)
        };
        let (net_c, victims_c) = mk();
        let cfg_c = SrConfig::default()
            .with_seed(seed)
            .with_fault_plan(FaultPlan::new().at(3, FaultEvent::KillNodes(victims_c)));
        let classic = Recovery::new(net_c, cfg_c).expect("topology").run();
        let (net_a, victims_a) = mk();
        let cfg_a = SrConfig::default()
            .with_seed(seed)
            .with_fault_plan(FaultPlan::new().at(3, FaultEvent::KillNodes(victims_a)));
        let adaptive = Recovery::new(net_a, cfg_a)
            .expect("topology")
            .run_adaptive();
        assert!(
            classic.fully_covered && adaptive.fully_covered,
            "seed {seed}"
        );
        assert_eq!(
            costs(classic.metrics),
            costs(adaptive.metrics),
            "seed {seed}"
        );
        // The fault round itself must have been executed by both.
        assert!(adaptive.metrics.rounds > 3, "seed {seed}");
    }
}

#[test]
fn rounds_is_the_only_divergent_field() {
    // Document the exact shape of the divergence: put the classic
    // driver's round count into the adaptive metrics and the two become
    // fully equal — nothing else drifted.
    let seed = 47;
    let mk = || seeded_network(8, 8, 3, 2, seed);
    let classic = Recovery::new(mk(), SrConfig::default().with_seed(seed))
        .expect("topology")
        .run();
    let adaptive = Recovery::new(mk(), SrConfig::default().with_seed(seed))
        .expect("topology")
        .run_adaptive();
    assert_ne!(classic.metrics, adaptive.metrics, "rounds must differ");
    let mut patched = adaptive.metrics;
    patched.rounds = classic.metrics.rounds;
    assert_eq!(classic.metrics, patched);
}
