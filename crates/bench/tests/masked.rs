//! Irregular-region acceptance: the masked 64×64 scenarios run SR,
//! SR-SC, and AR to full coverage of the enabled cells with zero
//! placements in disabled cells.
//!
//! This is the end-to-end proof of the masked replacement stack: mask →
//! masked deployment → masked virtual ring → protocol runs. The 64×64
//! presets each disable ≥15% of the grid ([`Scenario::masked_presets`]
//! pins that); holes are crafted by killing every member of a spread of
//! enabled cells, so each scheme must fill exactly those cells and
//! nothing else.

use wsn_baselines::{ArConfig, ArRecovery};
use wsn_bench::scenarios::Scenario;
use wsn_coverage::{Recovery, ShortcutRecovery, SrConfig};
use wsn_grid::{GridCoord, GridNetwork, RegionShape};
use wsn_simcore::{FaultEvent, NodeId};

/// Builds a masked preset's network and knocks out every member of every
/// `stride`-th enabled cell, returning the network and the holes.
fn holed_network(scenario: &Scenario, stride: usize) -> (GridNetwork, Vec<GridCoord>) {
    let mut net = scenario.build_network();
    let mask = net.mask().clone();
    let holes: Vec<GridCoord> = mask.iter_enabled().step_by(stride).collect();
    let mut rng = wsn_simcore::SimRng::seed_from_u64(scenario.seed ^ 0xb0);
    let victims: Vec<NodeId> = holes
        .iter()
        .flat_map(|&h| net.members(h).expect("in bounds").to_vec())
        .collect();
    net.apply_fault(&FaultEvent::KillNodes(victims), &mut rng);
    net.clear_changed_cells();
    assert_eq!(net.stats().vacant, holes.len());
    (net, holes)
}

fn assert_confined(net: &GridNetwork) {
    let mask = net.mask();
    let sys = net.system();
    for node in net.nodes() {
        if node.status().is_enabled() {
            let cell = sys.cell_of(node.position()).expect("in area");
            assert!(
                mask.is_enabled(cell),
                "enabled node {} sits in disabled cell {cell}",
                node.id()
            );
        }
    }
    net.debug_invariants();
}

#[test]
fn masked_64x64_presets_fully_recover_under_sr() {
    for scenario in Scenario::masked_presets()
        .into_iter()
        .filter(|s| s.cols == 64)
    {
        let (net, holes) = holed_network(&scenario, 97);
        let mut rec = Recovery::new(net, SrConfig::default().with_seed(scenario.seed)).unwrap();
        let report = rec.run();
        assert!(report.fully_covered, "{}: {report}", scenario.name);
        assert_eq!(report.metrics.processes_failed, 0, "{}", scenario.name);
        // One process per hole: synchronization survives the mask.
        assert_eq!(
            report.metrics.processes_initiated,
            holes.len() as u64,
            "{}",
            scenario.name
        );
        assert_confined(rec.network());
    }
}

#[test]
fn masked_64x64_presets_fully_recover_under_sr_sc() {
    for scenario in Scenario::masked_presets()
        .into_iter()
        .filter(|s| s.cols == 64)
    {
        let (net, holes) = holed_network(&scenario, 131);
        let mut rec =
            ShortcutRecovery::new(net, SrConfig::default().with_seed(scenario.seed)).unwrap();
        let report = rec.run();
        assert!(report.fully_covered, "{}: {report}", scenario.name);
        // The SR-SC headline survives masking: one movement per hole.
        assert_eq!(
            report.metrics.moves,
            holes.len() as u64,
            "{}",
            scenario.name
        );
        assert_confined(rec.network());
    }
}

#[test]
fn masked_64x64_presets_fully_recover_under_ar() {
    for scenario in Scenario::masked_presets()
        .into_iter()
        .filter(|s| s.cols == 64)
    {
        let (net, _) = holed_network(&scenario, 113);
        let mut rec = ArRecovery::new(net, ArConfig::default().with_seed(scenario.seed)).unwrap();
        let report = rec.run();
        assert!(report.run.is_quiescent(), "{}", scenario.name);
        assert!(report.fully_covered, "{}: {report}", scenario.name);
        assert_confined(rec.network());
    }
}

#[test]
fn masked_128x128_preset_recovers_under_sr() {
    // One 128×128 shape end-to-end (the full set is bench territory).
    let scenario = Scenario::masked_presets()
        .into_iter()
        .find(|s| s.cols == 128 && s.region == RegionShape::LShape)
        .expect("preset exists");
    let (net, holes) = holed_network(&scenario, 211);
    let mut rec = Recovery::new(net, SrConfig::default().with_seed(scenario.seed)).unwrap();
    let report = rec.run_adaptive();
    assert!(report.fully_covered, "{report}");
    assert_eq!(report.metrics.processes_initiated, holes.len() as u64);
    assert_confined(rec.network());
}
