//! The resumability honesty contract: a campaign interrupted at any
//! watermark and resumed — possibly repeatedly, through a JSON
//! checkpoint round-trip, at different worker counts — produces the
//! byte-identical final artifact of the uninterrupted run.
//!
//! This is the property the `served` daemon's kill-and-restart story
//! stands on: per-trial RNG streams are coordinate-addressed (so a
//! re-run trial replays exactly), cells fold strictly in trial order
//! (so the fold sequence is canonical), and checkpoints snapshot the
//! fold watermark plus exact accumulator registers (so resumed Welford
//! state is bit-equal). Break any of those and these tests fail.

use std::sync::Mutex;

use wsn_bench::campaign::{
    run_campaign, run_campaign_resumable, CampaignCheckpoint, CampaignConfig, CampaignError,
    CampaignObserver, CampaignRun, CancelAfter, CellStats,
};
use wsn_coverage::SchemeId;
use wsn_grid::RegionShape;

fn tiny_classic() -> CampaignConfig {
    CampaignConfig {
        name: "resume".into(),
        schemes: SchemeId::list(&["ar", "sr"]),
        grids: vec![(6, 6)],
        targets: vec![5, 20],
        seeds_per_cell: 3,
        ..CampaignConfig::paper()
    }
}

fn tiny_masked() -> CampaignConfig {
    CampaignConfig {
        name: "resume_mask".into(),
        regions: vec![RegionShape::Full, RegionShape::LShape],
        seeds_per_cell: 2,
        ..tiny_classic()
    }
}

fn tiny_steady() -> CampaignConfig {
    CampaignConfig {
        name: "resume_steady".into(),
        seeds_per_cell: 2,
        ..CampaignConfig::avail_smoke()
    }
}

fn tiny_degraded() -> CampaignConfig {
    CampaignConfig {
        name: "resume_deg".into(),
        seeds_per_cell: 2,
        ..CampaignConfig::degraded_smoke()
    }
}

/// Runs `cfg` to completion through repeated interruptions: cancel
/// after `step` folds, checkpoint, round-trip the checkpoint through
/// its JSON text, resume. Returns the final artifact and how many
/// interruptions occurred.
fn run_with_interruptions(cfg: &CampaignConfig, step: u64) -> (String, usize) {
    let mut checkpoint: Option<CampaignCheckpoint> = None;
    let mut interruptions = 0;
    loop {
        let observer = CancelAfter::new(step);
        match run_campaign_resumable(cfg, checkpoint.take(), &observer).expect("valid matrix") {
            CampaignRun::Complete(result) => return (result.to_json().to_string(), interruptions),
            CampaignRun::Interrupted(cp) => {
                interruptions += 1;
                assert!(interruptions < 10_000, "resume loop makes no progress");
                // The checkpoint must survive its own wire form: what
                // the daemon writes to disk is the JSON text, not the
                // in-memory struct.
                let restored = CampaignCheckpoint::from_json_str(&cp.to_json().to_string())
                    .expect("checkpoint round-trips");
                assert_eq!(restored.done, cp.done, "watermarks changed across the wire");
                assert_eq!(
                    restored.cells, cp.cells,
                    "cell state changed across the wire"
                );
                checkpoint = Some(restored);
            }
        }
    }
}

#[test]
fn interrupted_runs_reproduce_the_uninterrupted_artifact() {
    for (label, cfg, step) in [
        ("classic", tiny_classic(), 3),
        ("masked", tiny_masked(), 2),
        ("steady", tiny_steady(), 2),
        ("degraded", tiny_degraded(), 2),
    ] {
        let golden = run_campaign(&cfg)
            .expect("valid matrix")
            .to_json()
            .to_string();
        let (resumed, interruptions) = run_with_interruptions(&cfg, step);
        assert!(
            interruptions > 0,
            "{label}: the interruption harness never interrupted — the contract went untested"
        );
        assert_eq!(
            resumed, golden,
            "{label}: resumed artifact differs from the uninterrupted run"
        );
    }
}

#[test]
fn resume_skips_completed_trials_and_differing_worker_counts_agree() {
    let cfg = tiny_classic();
    let golden = run_campaign(&cfg)
        .expect("valid matrix")
        .to_json()
        .to_string();
    // Interrupt on a single worker, resume on eight.
    let observer = CancelAfter::new(4);
    let first = run_campaign_resumable(&cfg.clone().with_workers(1), None, &observer)
        .expect("valid matrix");
    let CampaignRun::Interrupted(cp) = first else {
        panic!(
            "a 4-trial budget must interrupt a {}-trial matrix",
            cfg.trial_count()
        );
    };
    let done_before = cp.trials_done();
    assert!(done_before >= 4, "the budget admits at least its own count");
    let resumed =
        run_campaign_resumable(&cfg.clone().with_workers(8), Some(cp), &()).expect("valid matrix");
    let CampaignRun::Complete(result) = resumed else {
        panic!("no-op observer must run to completion");
    };
    assert_eq!(result.to_json().to_string(), golden);
}

#[test]
fn folds_arrive_in_per_cell_trial_order() {
    /// Records the `(cell, done)` fold sequence the engine reports.
    struct Recorder(Mutex<Vec<(usize, u64)>>);
    impl CampaignObserver for Recorder {
        fn trial_folded(&self, cell: usize, done: u64, stats: &CellStats) {
            assert_eq!(stats.trials, done, "aggregate lags its own watermark");
            self.0.lock().unwrap().push((cell, done));
        }
    }
    let cfg = tiny_classic().with_workers(8);
    let recorder = Recorder(Mutex::new(Vec::new()));
    let run = run_campaign_resumable(&cfg, None, &recorder).expect("valid matrix");
    assert!(matches!(run, CampaignRun::Complete(_)));
    let folds = recorder.0.into_inner().unwrap();
    assert_eq!(folds.len() as u64, cfg.trial_count());
    // Per cell, the watermark strictly increments 1..=seeds_per_cell —
    // the canonical order every observer (and stream subscriber) sees.
    let mut seen = vec![0u64; cfg.cell_count()];
    for (cell, done) in folds {
        assert_eq!(done, seen[cell] + 1, "cell {cell} folded out of order");
        seen[cell] = done;
    }
    assert!(seen.iter().all(|&s| s == cfg.seeds_per_cell));
}

#[test]
fn mismatched_checkpoints_are_refused() {
    let cfg = tiny_classic();
    let observer = CancelAfter::new(2);
    let CampaignRun::Interrupted(cp) = run_campaign_resumable(&cfg, None, &observer).unwrap()
    else {
        panic!("budgeted observer must interrupt");
    };
    // Same matrix, different master seed: resuming would graft trials
    // from one experiment onto accumulators of another.
    let other = CampaignConfig {
        master_seed: cfg.master_seed + 1,
        ..cfg.clone()
    };
    let err = run_campaign_resumable(&other, Some(cp.clone()), &()).unwrap_err();
    assert!(matches!(err, CampaignError::CheckpointMismatch(_)), "{err}");
    // Tampered watermark shape is refused too.
    let mut bad = cp;
    bad.done.pop();
    bad.cells.pop();
    let err = run_campaign_resumable(&cfg, Some(bad), &()).unwrap_err();
    assert!(matches!(err, CampaignError::CheckpointMismatch(_)), "{err}");
}

#[test]
fn complete_checkpoints_resume_to_the_same_artifact_without_work() {
    // Interrupt at the very end: a checkpoint whose every watermark is
    // full resumes into the complete artifact with zero trials re-run.
    let cfg = tiny_classic();
    let golden = run_campaign(&cfg).unwrap().to_json().to_string();
    let total = cfg.trial_count();
    /// Cancels only after every fold has been observed.
    struct CancelAtEnd {
        total: u64,
        seen: std::sync::atomic::AtomicU64,
    }
    impl CampaignObserver for CancelAtEnd {
        fn trial_folded(&self, _cell: usize, _done: u64, _stats: &CellStats) {
            self.seen.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }
        fn cancel_requested(&self) -> bool {
            self.seen.load(std::sync::atomic::Ordering::SeqCst) >= self.total
        }
    }
    let observer = CancelAtEnd {
        total,
        seen: std::sync::atomic::AtomicU64::new(0),
    };
    match run_campaign_resumable(&cfg, None, &observer).unwrap() {
        // Either shape is legal at the boundary; both must reproduce
        // the golden artifact.
        CampaignRun::Complete(result) => {
            assert_eq!(result.to_json().to_string(), golden);
        }
        CampaignRun::Interrupted(cp) => {
            assert!(cp.is_complete());
            assert_eq!(cp.trials_done(), total);
            let CampaignRun::Complete(result) =
                run_campaign_resumable(&cfg, Some(cp), &()).unwrap()
            else {
                panic!("complete checkpoint must finish immediately");
            };
            assert_eq!(result.to_json().to_string(), golden);
        }
    }
}
