//! End-to-end exercises for the record/replay subsystem: campaign
//! coordinates re-execute deterministically, artifacts round-trip
//! through the binary container, a planted conformance bug is caught,
//! pinpointed and delta-debugged down to the hand-computed minimal
//! fault schedule, and the checked-in golden fixture replays clean on
//! every machine.

use std::path::{Path, PathBuf};

use wsn_bench::campaign::CampaignConfig;
use wsn_bench::replay::{
    self, fault_plan_from_str, fault_plan_to_string, record, recordings_diverge, scheme_with_plan,
    shrink_between, trace_matches_metrics, ReplayArtifact, ReplayError, ReplaySpec,
    PLANTED_SCHEME_ID, PLANTED_TRIGGER_ROUND,
};
use wsn_coverage::scheme::DriveMode;
use wsn_geometry::{Disk, Point2};
use wsn_simcore::replay::diff_logs;
use wsn_simcore::{FaultEvent, FaultPlan, NetModelSpec, NodeId, TraceEvent};

fn ids(raw: &[u32]) -> Vec<NodeId> {
    raw.iter().copied().map(NodeId::new).collect()
}

/// A per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wsn_replay_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A fault schedule that arms the planted bug (a kill-nodes batch at or
/// after the trigger round) surrounded by decoy batches the shrinker
/// must discard.
fn armed_plan() -> FaultPlan {
    FaultPlan::new()
        .at(1, FaultEvent::KillNodes(ids(&[3])))
        .at(2, FaultEvent::KillRandomEnabled { count: 1 })
        .at(PLANTED_TRIGGER_ROUND, FaultEvent::KillNodes(ids(&[5, 9])))
        .at(PLANTED_TRIGGER_ROUND + 1, FaultEvent::KillNodes(ids(&[12])))
}

#[test]
fn fault_plan_text_codec_round_trips() {
    let disk = Disk::new(Point2::new(1.0 / 3.0, 2.5e-3), 7.25).unwrap();
    let plan = FaultPlan::new()
        .at(0, FaultEvent::KillNodes(ids(&[0, 7, u32::MAX])))
        .at(3, FaultEvent::KillRandomEnabled { count: 5 })
        .at(9, FaultEvent::KillRegion(disk));
    let text = fault_plan_to_string(&plan);
    assert_eq!(fault_plan_from_str(&text).unwrap(), plan);
    // The empty plan is the fixed point of both directions.
    assert_eq!(fault_plan_to_string(&FaultPlan::new()), "");
    assert_eq!(fault_plan_from_str("").unwrap(), FaultPlan::new());
    // Malformed batches are named in the error.
    assert!(matches!(
        fault_plan_from_str("5:frobnicate:1"),
        Err(ReplayError::BadArtifact(_))
    ));
    assert!(fault_plan_from_str("x:kill-random:1").is_err());
}

#[test]
fn artifacts_round_trip_through_the_binary_container() {
    let matrix = ReplaySpec::matrix("sr", (8, 8), 10, 2)
        .with_drive(DriveMode::ChangeDriven)
        .with_plan(armed_plan());
    let scenario = ReplaySpec::scenario("ar", (6, 6), 2, 2, 47);
    for spec in [matrix, scenario] {
        let rec = record(&spec).expect("spec records");
        for baseline in [None, Some(("sr".to_string(), DriveMode::Classic))] {
            let artifact = ReplayArtifact::from_recording(&rec, baseline);
            let bytes = artifact.to_bytes();
            let back = ReplayArtifact::from_bytes(&bytes).expect("artifact parses");
            assert_eq!(back, artifact, "{}", spec.slug());
        }
    }
    // A container without the replay schema tag is rejected up front.
    let plain = wsn_simcore::trace::binary::encode(&[], &wsn_simcore::TraceLog::new());
    assert!(matches!(
        ReplayArtifact::from_bytes(&plain),
        Err(ReplayError::BadArtifact(_))
    ));
}

#[test]
fn recording_a_spec_twice_is_byte_identical_and_replays_clean() {
    let spec = ReplaySpec::matrix("sr", (8, 8), 10, 0);
    let a = record(&spec).expect("records");
    let b = record(&spec).expect("records");
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.report, b.report);
    let artifact = ReplayArtifact::from_recording(&a, None);
    assert_eq!(
        artifact.to_bytes(),
        ReplayArtifact::from_recording(&b, None).to_bytes()
    );
    assert!(artifact.verify().expect("replays").is_clean());
}

#[test]
fn campaign_coordinates_are_re_executable() {
    // Any (cell, trial) of a campaign resolves to a spec that records —
    // the trial is reproducible from the config and coordinate alone.
    let cfg = CampaignConfig::smoke();
    let cells = cfg.schemes.len() * cfg.regions.len() * cfg.grids.len() * cfg.targets.len();
    for cell in [0, cells / 2, cells - 1] {
        let spec = ReplaySpec::for_campaign_trial(&cfg, cell, 1).expect("in range");
        let rec = record(&spec).unwrap_or_else(|e| panic!("cell {cell}: {e}"));
        assert!(
            rec.trace.is_enabled(),
            "cell {cell} ({}) must capture events",
            spec.slug()
        );
        trace_matches_metrics(&rec).unwrap_or_else(|e| panic!("cell {cell}: {e}"));
        // Same coordinate, same record — order and repetition free.
        let again = record(&spec).expect("re-records");
        assert_eq!(rec.trace, again.trace, "cell {cell}");
    }
    assert!(matches!(
        ReplaySpec::for_campaign_trial(&cfg, cells, 0),
        Err(ReplayError::BadCell { .. })
    ));
}

#[test]
fn event_drive_specs_round_trip_and_replay_clean() {
    // Every network-model token survives the artifact codec, and a
    // recorded event-driven run re-executes byte-identically from its
    // own metadata — lossy weather included, because the link RNG is
    // seeded from the spec, not the wall clock.
    let nets = [
        NetModelSpec::Ideal,
        NetModelSpec::FixedLatency { ticks: 3 },
        NetModelSpec::Bernoulli {
            loss_ppm: 300_000,
            latency: 2,
        },
        NetModelSpec::Jammer {
            x_mm: 2_500,
            y_mm: 2_500,
            radius_mm: 1_200,
        },
    ];
    for net in nets {
        let spec =
            ReplaySpec::scenario("sr", (6, 6), 2, 2, 47).with_drive(DriveMode::EventDriven { net });
        let rec = record(&spec).unwrap_or_else(|e| panic!("{}: {e}", net.token()));
        let artifact = ReplayArtifact::from_recording(&rec, None);
        let back = ReplayArtifact::from_bytes(&artifact.to_bytes()).expect("artifact parses");
        assert_eq!(back, artifact, "{}", net.token());
        assert_eq!(back.spec.drive, DriveMode::EventDriven { net });
        assert!(
            artifact.verify().expect("replays").is_clean(),
            "{}",
            net.token()
        );
    }
}

#[test]
fn degraded_campaign_coordinates_resolve_to_the_cells_weather() {
    // A degraded-mode coordinate must reproduce what the worker ran:
    // the event-driven drive carrying that cell's network model. The
    // smoke config's net axis is 2 latencies x 2 losses with losses
    // innermost, so consecutive cells walk the weather matrix.
    let cfg = CampaignConfig::degraded_smoke();
    let combos = cfg.degraded.combo_count();
    let cells =
        cfg.schemes.len() * cfg.regions.len() * cfg.grids.len() * cfg.targets.len() * combos;
    for cell in [0, 1, combos - 1, cells - 1] {
        let spec = ReplaySpec::for_campaign_trial(&cfg, cell, 0).expect("in range");
        assert_eq!(
            spec.drive,
            DriveMode::EventDriven {
                net: cfg.degraded.spec(cell % combos)
            },
            "cell {cell}"
        );
        let rec = record(&spec).unwrap_or_else(|e| panic!("cell {cell}: {e}"));
        let again = record(&spec).expect("re-records");
        assert_eq!(rec.trace, again.trace, "cell {cell}");
    }
    assert!(matches!(
        ReplaySpec::for_campaign_trial(&cfg, cells, 0),
        Err(ReplayError::BadCell { .. })
    ));
}

#[test]
fn traced_runs_bill_exactly_one_event_per_move_for_every_scheme() {
    for scheme in ["sr", "sr-sc", "ar", "vf", "smart"] {
        let spec = ReplaySpec::scenario(scheme, (8, 8), 3, 2, 11);
        let rec = record(&spec).unwrap_or_else(|e| panic!("{scheme}: {e}"));
        trace_matches_metrics(&rec).unwrap_or_else(|e| panic!("{scheme}: {e}"));
        assert!(!rec.trace.is_empty(), "{scheme}: trace must not be empty");
    }
}

#[test]
fn trace_vocabulary_pins_single_initiation_and_one_message_per_hop() {
    // THEORY.md maps two of the paper's claims onto the trace
    // vocabulary, and this test is their pin. (1) Single initiation
    // (Theorem 1's synchronization): every replacement process appears
    // in the log as exactly one `process_initiated` event, one per
    // hole. (2) One message per hop: SR's only messages are the
    // backward notifications, so `notification_sent` events equal the
    // billed `messages` exactly.
    let spec = ReplaySpec::scenario("sr", (8, 8), 3, 2, 47);
    let rec = record(&spec).expect("sr records");
    let m = &rec.report.metrics;
    assert_eq!(
        rec.trace.count_kind("process_initiated") as u64,
        m.processes_initiated
    );
    assert_eq!(rec.trace.count_kind("notification_sent") as u64, m.messages);
    assert_eq!(rec.trace.count_kind("node_moved") as u64, m.moves);
    let mut seen = std::collections::BTreeSet::new();
    for r in rec.trace.of_kind("process_initiated") {
        if let TraceEvent::ProcessInitiated { process, .. } = &r.event {
            assert!(seen.insert(*process), "process #{process} initiated twice");
        }
    }
    assert_eq!(seen.len() as u64, m.processes_initiated);
}

#[test]
fn scheme_factory_rejects_unknowns_and_planful_baselines() {
    assert!(matches!(
        scheme_with_plan("nope", &FaultPlan::new()),
        Err(ReplayError::UnknownScheme(_))
    ));
    // The structure-free baselines have no fault hook: an empty plan is
    // fine, a non-empty one must be refused instead of silently dropped.
    for id in ["ar", "vf", "smart"] {
        assert!(scheme_with_plan(id, &FaultPlan::new()).is_ok(), "{id}");
        assert!(
            matches!(
                scheme_with_plan(id, &armed_plan()),
                Err(ReplayError::PlanNotSupported(_))
            ),
            "{id}"
        );
    }
    for id in ["sr", "sr-sc", PLANTED_SCHEME_ID] {
        assert!(scheme_with_plan(id, &armed_plan()).is_ok(), "{id}");
    }
}

#[test]
fn planted_divergence_is_caught_pinpointed_and_shrunk_end_to_end() {
    // The full loop the conformance battery relies on, proven against
    // the planted bug: record -> diverge -> artifact -> diff pinpoints
    // the corrupted event -> shrink lands on the hand-computed minimum.
    let planted = ReplaySpec::matrix(PLANTED_SCHEME_ID, (8, 8), 10, 0).with_plan(armed_plan());
    let real = planted.clone().with_scheme("sr");
    let left = record(&planted).expect("planted records");
    let right = record(&real).expect("sr records");
    assert!(
        recordings_diverge(&left, &right),
        "the planted bug must diverge from real SR"
    );

    // The diff pinpoints the corruption: the first divergent record is
    // a notification at/after the trigger round, re-routed to itself.
    let diff = diff_logs(&left.trace, &right.trace);
    let div = diff.divergence.clone().expect("divergence reported");
    let bad = div.left.expect("left side has the corrupted record");
    assert!(bad.round >= PLANTED_TRIGGER_ROUND);
    match bad.event {
        TraceEvent::NotificationSent { from, to, .. } => {
            assert_eq!(from, to, "the planted bug re-routes to the sender")
        }
        other => panic!("expected a corrupted notification, got {other}"),
    }

    // The emitted report writes both artifacts + the shrunk schedule.
    let dir = scratch("e2e");
    let msg = replay::divergence_message(&dir, "planted e2e", &planted, &real)
        .expect("divergence report");
    assert!(msg.contains("runs diverged"), "{msg}");
    assert!(msg.contains("minimal failing schedule"), "{msg}");
    let left_path = dir.join(format!("replay_{}.trace", planted.slug()));
    let right_path = dir.join(format!("replay_{}.trace", real.slug()));
    assert!(left_path.exists(), "{msg}");
    assert!(right_path.exists(), "{msg}");
    // Both artifacts re-execute from disk alone.
    for path in [&left_path, &right_path] {
        let art = ReplayArtifact::load(path).expect("artifact loads");
        assert!(
            art.verify().expect("replays").is_clean(),
            "{}",
            path.display()
        );
    }

    // The shrunk schedule is the hand-computed minimum: one kill-nodes
    // batch, one victim, at/after the trigger round.
    let report = shrink_between(&planted, &real).expect("shrinks");
    assert!(report.reproduced);
    let events = report.plan.events();
    assert_eq!(events.len(), 1, "{}", fault_plan_to_string(&report.plan));
    assert!(events[0].round >= PLANTED_TRIGGER_ROUND);
    match &events[0].event {
        FaultEvent::KillNodes(victims) => assert_eq!(victims.len(), 1),
        other => panic!("expected a kill-nodes batch, got {other:?}"),
    }

    // Deterministic: reruns take the identical path and land on the
    // identical schedule (ddmin is a pure fold over oracle answers).
    let again = shrink_between(&planted, &real).expect("shrinks again");
    assert_eq!(again.plan, report.plan);
    assert_eq!(again.oracle_calls, report.oracle_calls);
}

#[test]
fn seeded_known_bad_schedules_all_shrink_to_the_minimum() {
    // Satellite battery for the shrinker: differently-shaped known-bad
    // schedules (decoy rounds before the trigger, random-kill noise,
    // fat victim lists, redundant batches) must all reduce to exactly
    // one kill-nodes batch with one victim — and deterministically so.
    let schedules = [
        FaultPlan::new().at(PLANTED_TRIGGER_ROUND, FaultEvent::KillNodes(ids(&[2]))),
        FaultPlan::new().at(7, FaultEvent::KillNodes(ids(&[1, 2, 3, 4, 5, 6]))),
        armed_plan(),
        FaultPlan::new()
            .at(0, FaultEvent::KillRandomEnabled { count: 2 })
            .at(1, FaultEvent::KillNodes(ids(&[8])))
            .at(4, FaultEvent::KillNodes(ids(&[10, 11])))
            .at(5, FaultEvent::KillNodes(ids(&[20, 21])))
            .at(6, FaultEvent::KillNodes(ids(&[30]))),
    ];
    for (i, plan) in schedules.into_iter().enumerate() {
        let planted = ReplaySpec::matrix(PLANTED_SCHEME_ID, (8, 8), 10, 0).with_plan(plan.clone());
        let real = planted.clone().with_scheme("sr");
        let report = shrink_between(&planted, &real).unwrap_or_else(|e| panic!("plan {i}: {e}"));
        assert!(report.reproduced, "plan {i} must reproduce");
        let events = report.plan.events();
        assert_eq!(
            events.len(),
            1,
            "plan {i} shrank to {:?}",
            fault_plan_to_string(&report.plan)
        );
        assert!(events[0].round >= PLANTED_TRIGGER_ROUND, "plan {i}");
        match &events[0].event {
            FaultEvent::KillNodes(victims) => {
                assert_eq!(victims.len(), 1, "plan {i}");
                // 1-minimality is against the original schedule: the
                // surviving victim came from one of its batches.
                assert!(
                    plan.events().iter().any(|e| matches!(
                        &e.event,
                        FaultEvent::KillNodes(orig) if orig.contains(&victims[0])
                    )),
                    "plan {i}"
                );
            }
            other => panic!("plan {i}: expected kill-nodes, got {other:?}"),
        }
        let again = shrink_between(&planted, &real).unwrap();
        assert_eq!(
            again.plan, report.plan,
            "plan {i} must shrink deterministically"
        );
        assert_eq!(again.oracle_calls, report.oracle_calls, "plan {i}");
    }
}

#[test]
fn unarmed_schedules_do_not_reproduce() {
    // Schedules that never arm the planted bug leave the two schemes
    // identical, and the shrinker reports that instead of fabricating a
    // minimum.
    let plan = FaultPlan::new().at(1, FaultEvent::KillNodes(ids(&[3])));
    let planted = ReplaySpec::matrix(PLANTED_SCHEME_ID, (8, 8), 10, 0).with_plan(plan);
    let real = planted.clone().with_scheme("sr");
    let l = record(&planted).unwrap();
    let r = record(&real).unwrap();
    assert!(!recordings_diverge(&l, &r));
    let report = shrink_between(&planted, &real).unwrap();
    assert!(!report.reproduced);
}

#[test]
fn golden_replay_fixture_parses_re_executes_and_diffs_clean() {
    // The checked-in fixture must parse, re-execute from its own
    // metadata, and produce a byte-identical trace on every machine —
    // any codec, RNG-stream or scheme-behavior drift fails here first.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/replay_smoke.trace");
    let artifact = ReplayArtifact::load(&path).expect("golden fixture parses");
    assert_eq!(artifact.spec.scheme, "sr");
    assert!(!artifact.trace.is_empty(), "fixture holds a real trace");
    let diff = artifact.verify().expect("fixture spec still runs");
    assert!(
        diff.is_clean(),
        "golden replay fixture diverged from a fresh run:\n{diff}"
    );
    // And the serialized form is canonical: load -> save is identity.
    assert_eq!(
        artifact.to_bytes(),
        std::fs::read(&path).expect("fixture readable")
    );
}
