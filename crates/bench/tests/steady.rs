//! Steady-state availability campaign at production scale: all five
//! registered schemes drive the open-system workload on the 64×64 grid
//! under Poisson faults, Poisson arrivals and a moving jammer — the
//! acceptance scenario of the availability workloads.

use wsn_bench::campaign::{run_campaign, CampaignConfig, CampaignMode};
use wsn_bench::steady::SteadyParams;

#[test]
#[ignore = "~4 min in release, far longer in debug; CI's release suite runs it via --include-ignored"]
fn five_schemes_complete_steady_state_on_64x64() {
    let cfg = CampaignConfig {
        name: "steady64-test".into(),
        targets: vec![256],
        seeds_per_cell: 1,
        steady: SteadyParams {
            ticks: 16,
            fault_rate: 4.0,
            arrival_rate: 4.0,
            jammer_period: 8,
            jammer_radius_cells: 2.5,
            ..CampaignConfig::avail().steady
        },
        ..CampaignConfig::avail()
    };
    assert_eq!(cfg.mode, CampaignMode::SteadyState);
    assert_eq!(cfg.grids, vec![(64, 64)]);
    assert_eq!(cfg.schemes.len(), 5);

    let result = run_campaign(&cfg).expect("the avail matrix validates");
    assert_eq!(result.cells.len(), 5);
    for cell in &result.cells {
        assert_eq!(cell.trials, 1, "{}", cell.scheme);
        let s = cell.steady.as_ref().expect("steady cells carry summaries");
        // Poisson faults and two jammer crossings must both strike a
        // 4096-cell deployment.
        assert!(s.failures > 16, "{}: faults {}", cell.scheme, s.failures);
        assert!(s.arrivals > 0, "{}", cell.scheme);
        let avail = s.availability.summary().mean();
        assert!((0.0..=1.0).contains(&avail), "{}: {avail}", cell.scheme);
        // Every tick billed energy (4096+ nodes idling is never free).
        assert!(s.energy_rate.summary().mean() > 0.0, "{}", cell.scheme);
    }
    // Paired workloads: every scheme opened from the same deployment and
    // saw the same arrival sequence.
    let sr = result.cell("sr", 64, 64, 256).unwrap();
    for other in ["ar", "sr-sc", "vf", "smart"] {
        let cell = result.cell(other, 64, 64, 256).unwrap();
        assert_eq!(sr.holes, cell.holes, "{other}");
        assert_eq!(
            sr.steady.as_ref().unwrap().arrivals,
            cell.steady.as_ref().unwrap().arrivals,
            "{other}"
        );
    }
    // The artifact round-trips with the steady block present.
    let json = result.to_json().to_string();
    assert!(json.contains("\"mode\":\"steady_state\""));
    assert!(json.contains("\"steady\""));
}
