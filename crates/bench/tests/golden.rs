//! Golden-file regression for the machine-readable result artifacts.
//!
//! Two fixtures are checked in under `tests/golden/`:
//!
//! * `sweep_16x16.json` — the quick-config sweep artifact (the same
//!   bytes as the repository's `results/sweep_16x16.json`), pinning the
//!   sweep schema *and* the simulation outcomes behind it: any change
//!   to the RNG stream, deployment, SR/AR behavior or JSON rendering
//!   shows up as a diff here before it silently rewrites history in
//!   `results/`.
//! * `campaign_smoke8.json` — the smoke campaign artifact, pinning the
//!   `wsn-campaign/3` schema (scheme axis as registry *ids*, all five
//!   built-ins): config echo (without the worker count, which must
//!   never leak into results), per-cell streaming summaries, confidence
//!   intervals and histograms, all with normalized
//!   (shortest-round-trip) float formatting.
//! * `campaign_masked8.json` — the irregular-region smoke campaign (all
//!   five schemes on the 8×8 L-shape and annulus), pinning the region
//!   axis end to end: masked deployment, masked replacement rings, and
//!   the `region` fields of the artifact.
//! * `event_smoke8.json` — the degraded-mode smoke campaign (AR, SR and
//!   SR-SC on the 8×8 grid over a 2×2 latency × loss weather matrix),
//!   pinning the event-driven engine end to end: the scheduler, the
//!   network models' coordinate-addressed RNG streams, the per-cell
//!   `net` and `health` blocks, and the Ideal-weather cells'
//!   byte-equality with the classic engine.
//!
//! When a change is *intentional* (new metric field, schema bump),
//! regenerate the fixture and say so in the commit: the diff is the
//! review artifact.

use wsn_bench::campaign::{run_campaign, CampaignConfig};
use wsn_bench::sweep::{run_sweep, sweep_to_json, SweepConfig};

const SWEEP_GOLDEN: &str = include_str!("golden/sweep_16x16.json");
const CAMPAIGN_GOLDEN: &str = include_str!("golden/campaign_smoke8.json");
const MASKED_GOLDEN: &str = include_str!("golden/campaign_masked8.json");
const EVENT_GOLDEN: &str = include_str!("golden/event_smoke8.json");

#[test]
fn quick_sweep_reproduces_the_checked_in_artifact() {
    let cfg = SweepConfig::quick();
    let results = run_sweep(&cfg);
    let rendered = sweep_to_json(&cfg, &results).to_file_string();
    assert_eq!(
        rendered, SWEEP_GOLDEN,
        "sweep_16x16.json drifted; regenerate the fixture if intentional"
    );
}

#[test]
fn smoke_campaign_reproduces_the_checked_in_artifact() {
    let result = run_campaign(&CampaignConfig::smoke()).expect("smoke matrix is valid");
    let rendered = result.to_json().to_file_string();
    assert_eq!(
        rendered, CAMPAIGN_GOLDEN,
        "campaign_smoke8.json drifted; regenerate the fixture if intentional"
    );
}

#[test]
fn masked_campaign_reproduces_the_checked_in_artifact() {
    let result = run_campaign(&CampaignConfig::masked_smoke()).expect("masked matrix is valid");
    let rendered = result.to_json().to_file_string();
    assert_eq!(
        rendered, MASKED_GOLDEN,
        "campaign_masked8.json drifted; regenerate the fixture if intentional"
    );
}

#[test]
fn degraded_campaign_reproduces_the_checked_in_artifact() {
    let result = run_campaign(&CampaignConfig::degraded_smoke()).expect("degraded matrix is valid");
    let rendered = result.to_json().to_file_string();
    assert_eq!(
        rendered, EVENT_GOLDEN,
        "event_smoke8.json drifted; regenerate the fixture if intentional"
    );
}

#[test]
fn degraded_schema_has_the_advertised_shape() {
    assert!(EVENT_GOLDEN.starts_with("{\"schema\":\"wsn-campaign/3\""));
    for key in [
        "\"mode\":\"degraded\"",
        "\"degraded\":{\"latencies\":[1,3],\"loss_ppms\":[0,300000]}",
        "\"schemes\":[\"ar\",\"sr\",\"sr-sc\"]",
        "\"net\":\"ideal\"",
        "\"net\":\"lat3\"",
        "\"net\":\"loss300000-lat1\"",
        "\"net\":\"loss300000-lat3\"",
        "\"health\":{\"messages_sent\"",
        "\"duplicate_initiations\"",
        "\"lost_cascades\"",
        "\"stalled_repairs\"",
    ] {
        assert!(EVENT_GOLDEN.contains(key), "missing {key}");
    }
    assert!(!EVENT_GOLDEN.contains("NaN"));
    assert!(!EVENT_GOLDEN.contains("inf"));
    assert!(EVENT_GOLDEN.ends_with("}\n"));
    // The closed-mode fixtures are untouched by the degraded axis: no
    // net or health fields anywhere.
    for golden in [CAMPAIGN_GOLDEN, MASKED_GOLDEN] {
        assert!(!golden.contains("\"net\":"));
        assert!(!golden.contains("\"health\":"));
        assert!(!golden.contains("\"degraded\""));
    }
}

#[test]
fn campaign_schema_has_the_advertised_shape() {
    // Cheap structural assertions on the fixture itself, so schema
    // violations fail with a readable message even when the byte diff
    // is large.
    assert!(CAMPAIGN_GOLDEN.starts_with("{\"schema\":\"wsn-campaign/3\""));
    for key in [
        "\"config\":",
        "\"schemes\":[\"ar\",\"sr\",\"sr-sc\",\"vf\",\"smart\"]",
        "\"regions\":[\"full\"]",
        "\"cells\":",
        "\"scheme\":\"ar\"",
        "\"scheme\":\"sr\"",
        "\"scheme\":\"sr-sc\"",
        "\"scheme\":\"vf\"",
        "\"scheme\":\"smart\"",
        "\"region\":\"full\"",
        "\"metrics\":",
        "\"moves\":",
        "\"ci\":{\"level\":0.95",
        "\"histogram\":",
        "\"covered_trials\":",
    ] {
        assert!(CAMPAIGN_GOLDEN.contains(key), "missing {key}");
    }
    // The masked fixture carries the irregular region axis and all five
    // schemes.
    assert!(MASKED_GOLDEN.starts_with("{\"schema\":\"wsn-campaign/3\""));
    for key in [
        "\"regions\":[\"l-shape\",\"annulus\"]",
        "\"region\":\"l-shape\"",
        "\"region\":\"annulus\"",
        "\"scheme\":\"sr-sc\"",
        "\"scheme\":\"vf\"",
        "\"scheme\":\"smart\"",
    ] {
        assert!(MASKED_GOLDEN.contains(key), "missing {key}");
    }
    // Floats are normalized: no NaN/Infinity tokens, newline-terminated.
    for golden in [CAMPAIGN_GOLDEN, MASKED_GOLDEN] {
        assert!(!golden.contains("NaN"));
        assert!(!golden.contains("inf"));
        assert!(golden.ends_with("}\n"));
    }
    assert!(SWEEP_GOLDEN.ends_with("}\n"));
}
