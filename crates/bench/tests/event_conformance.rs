//! Conformance battery for the event-driven message-passing engine.
//!
//! The engine ([`wsn_coverage::actor`]) re-implements SR and SR-SC as
//! genuine distributed protocols — typed envelopes through a network
//! model, a virtual-clock scheduler, per-cell actors. The honesty
//! argument: under [`NetModelSpec::Ideal`] every envelope arrives at
//! the start of the next round, which is exactly when the classic
//! lock-step runner would have acted on it, so the event engine must
//! reproduce the classic runner's reports **byte for byte** — same
//! metrics (including `rounds`), same per-process summaries, same
//! RNG draw order. This suite pins that equivalence across the same
//! scenario grid the change-driven conformance suite uses (single-cycle
//! and dual-path grids, masked regions, mid-run faults), then pins the
//! paper's two message-complexity claims as trace-count equalities, and
//! finally checks the engine is honest about *degraded* weather: a
//! seeded 30%-loss run must report the pathologies (duplicate
//! initiations, lost cascades) that the paper's reliable-channel
//! assumption defines away.

use proptest::prelude::*;
use wsn_baselines::builtins;
use wsn_coverage::scheme::{DriveMode, NetworkSpec};
use wsn_coverage::{EventScRecovery, EventSrRecovery, Recovery, ShortcutRecovery, SrConfig};
use wsn_grid::{deploy, GridCoord, GridNetwork, GridSystem, RegionMask};
use wsn_simcore::{FaultEvent, FaultPlan, NetModelSpec, SimRng, TraceEvent};

/// The scenario grid shared with the change-driven conformance suite:
/// `(cols, rows, holes, per_cell)` per entry, each run under several
/// seeds. Includes the dual-path structures (odd × odd and odd × odd
/// non-square) that Algorithm 2 serves.
fn scenario_grid() -> Vec<(u16, u16, usize, usize)> {
    vec![
        (4, 4, 1, 2),
        (6, 6, 2, 2),
        (6, 6, 4, 3),
        (8, 8, 3, 2),
        (5, 5, 2, 2), // dual-path structure (odd x odd)
        (7, 5, 3, 3), // dual-path, non-square
    ]
}

/// Deterministically punches `holes` distinct cells out of a
/// `per_cell`-dense deployment.
fn seeded_network(cols: u16, rows: u16, holes: usize, per_cell: usize, seed: u64) -> GridNetwork {
    let sys = GridSystem::for_comm_range(cols, rows, 10.0).expect("valid dims");
    let mut rng = SimRng::seed_from_u64(seed);
    let hole_coords: Vec<GridCoord> = rng
        .sample_indices(sys.cell_count(), holes)
        .into_iter()
        .map(|i| sys.coord_of(i))
        .collect();
    let pos = deploy::with_holes(&sys, &hole_coords, per_cell, &mut rng);
    GridNetwork::new(sys, &pos)
}

/// A sparse topology that forces long backward cascades: one node per
/// cell, a hole in the middle, and the only spare parked in the corner.
fn cascade_network(seed: u64) -> GridNetwork {
    let sys = GridSystem::for_comm_range(8, 8, 10.0).expect("valid dims");
    let mut rng = SimRng::seed_from_u64(seed);
    let mut pos = deploy::with_holes(&sys, &[GridCoord::new(4, 4)], 1, &mut rng);
    pos.push(
        sys.cell_rect(GridCoord::new(0, 0))
            .expect("in bounds")
            .center(),
    );
    GridNetwork::new(sys, &pos)
}

#[test]
fn sr_event_ideal_reproduces_the_classic_report_across_the_scenario_grid() {
    for (cols, rows, holes, per_cell) in scenario_grid() {
        for seed in [11u64, 47, 1009] {
            let tag = format!("SR {cols}x{rows} holes={holes} seed={seed}");
            let mk = || seeded_network(cols, rows, holes, per_cell, seed);
            let classic = Recovery::new(mk(), SrConfig::default().with_seed(seed))
                .expect("topology exists")
                .run();
            let event = EventSrRecovery::new(
                mk(),
                SrConfig::default().with_seed(seed),
                NetModelSpec::Ideal,
            )
            .expect("topology exists")
            .run();
            // SchemeReport equality covers metrics (rounds included),
            // coverage verdict, per-process summaries and final stats —
            // the full byte-identical contract.
            assert_eq!(classic, event, "{tag}");
            assert!(event.health.is_clean(), "{tag}: ideal weather is clean");
        }
    }
}

#[test]
fn sr_sc_event_ideal_reproduces_the_classic_report_on_cycle_grids() {
    // SR-SC needs a single Hamilton cycle (one even side), so the
    // dual-path entries of the grid are out of spec by construction.
    for (cols, rows, holes, per_cell) in scenario_grid() {
        if cols % 2 == 1 && rows % 2 == 1 {
            continue;
        }
        for seed in [11u64, 47, 1009] {
            let tag = format!("SR-SC {cols}x{rows} holes={holes} seed={seed}");
            let mk = || seeded_network(cols, rows, holes, per_cell, seed);
            let classic = ShortcutRecovery::new(mk(), SrConfig::default().with_seed(seed))
                .expect("cycle exists")
                .run();
            let event = EventScRecovery::new(
                mk(),
                SrConfig::default().with_seed(seed),
                NetModelSpec::Ideal,
            )
            .expect("cycle exists")
            .run();
            assert_eq!(classic, event, "{tag}");
            assert!(event.health.is_clean(), "{tag}: ideal weather is clean");
        }
    }
}

#[test]
fn sr_event_ideal_conformance_holds_under_mid_run_faults() {
    // Killing a whole cell at round 3 re-opens recovery after the
    // initial holes are already repaired; the event engine must keep
    // pace with the classic runner through the fault keepalive.
    for seed in [5u64, 21] {
        let mk = || {
            let net = seeded_network(6, 6, 1, 2, seed);
            let victims = net
                .members(GridCoord::new(3, 3))
                .expect("in bounds")
                .to_vec();
            let cfg = SrConfig::default()
                .with_seed(seed)
                .with_fault_plan(FaultPlan::new().at(3, FaultEvent::KillNodes(victims)));
            (net, cfg)
        };
        let (net_c, cfg_c) = mk();
        let classic = Recovery::new(net_c, cfg_c).expect("topology").run();
        let (net_e, cfg_e) = mk();
        let event = EventSrRecovery::new(net_e, cfg_e, NetModelSpec::Ideal)
            .expect("topology")
            .run();
        assert_eq!(classic, event, "seed {seed}");
        assert!(event.metrics.rounds > 3, "seed {seed}: fault round ran");
    }
}

#[test]
fn event_ideal_conformance_holds_on_masked_regions_via_the_registry() {
    // The uniform API on an irregular region: classic vs
    // EventDriven{Ideal} through ReplacementScheme::run, no per-scheme
    // code. VF and SMART must refuse the mode without touching the
    // network.
    let registry = builtins();
    let mask = RegionMask::l_shape(8, 8);
    let mk = |seed: u64| {
        let sys = GridSystem::for_comm_range(8, 8, 10.0).unwrap();
        let mut rng = SimRng::seed_from_u64(seed);
        let enabled: Vec<GridCoord> = mask.iter_enabled().collect();
        let holes = vec![enabled[7], enabled[19]];
        let pos = deploy::with_holes_masked(&sys, &mask, &holes, 2, &mut rng);
        GridNetwork::with_mask(sys, mask.clone(), &pos).unwrap()
    };
    for scheme in registry.iter() {
        for seed in [11u64, 47] {
            let tag = format!("{} seed={seed}", scheme.id());
            scheme
                .supports(&NetworkSpec::masked(mask.clone()))
                .unwrap_or_else(|e| panic!("{tag}: {e}"));
            if scheme.supports_event_driven() {
                let mut net_c = mk(seed);
                let classic = scheme
                    .run(&mut net_c, seed, DriveMode::Classic)
                    .unwrap_or_else(|e| panic!("{tag}: {e}"));
                let mut net_e = mk(seed);
                let event = scheme
                    .run(
                        &mut net_e,
                        seed,
                        DriveMode::EventDriven {
                            net: NetModelSpec::Ideal,
                        },
                    )
                    .unwrap_or_else(|e| panic!("{tag}: {e}"));
                assert_eq!(classic, event, "{tag}");
                assert_eq!(net_c.stats(), net_e.stats(), "{tag}");
                net_e.debug_invariants();
            } else {
                let mut net = mk(seed);
                let untouched = net.stats();
                assert!(
                    scheme
                        .run(
                            &mut net,
                            seed,
                            DriveMode::EventDriven {
                                net: NetModelSpec::Ideal,
                            },
                        )
                        .is_err(),
                    "{tag}: classic-only scheme must refuse the event driver"
                );
                assert_eq!(net.stats(), untouched, "{tag}: refusal must not mutate");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property form of the conformance claim: on arbitrary small
    /// grids, hole counts, densities and seeds, SR under
    /// EventDriven+Ideal is report-identical to the classic runner —
    /// whether or not the scenario is recoverable.
    #[test]
    fn sr_event_ideal_matches_classic_on_arbitrary_scenarios(
        cols in 4u16..9,
        rows in 4u16..9,
        holes in 1usize..4,
        per_cell in 1usize..3,
        seed in 0u64..1_000_000,
    ) {
        let mk = || seeded_network(cols, rows, holes, per_cell, seed);
        let classic = Recovery::new(mk(), SrConfig::default().with_seed(seed))
            .expect("grids >= 3x4 have a replacement structure")
            .run();
        let event = EventSrRecovery::new(
            mk(),
            SrConfig::default().with_seed(seed),
            NetModelSpec::Ideal,
        )
        .expect("grids >= 3x4 have a replacement structure")
        .run();
        prop_assert_eq!(classic, event);
    }
}

#[test]
fn one_message_per_backward_hop_under_ideal_weather() {
    // Theorem anchor (paper §IV): a snake-like replacement notifies
    // exactly once per backward hop. In the event engine every
    // backward hop is one `hole_announce` envelope, so the traced
    // envelope count must equal the classic runner's `messages`
    // counter — the classic counter *is* the hop count.
    for (cols, rows, holes, per_cell) in scenario_grid() {
        for seed in [11u64, 47] {
            let tag = format!("SR {cols}x{rows} holes={holes} seed={seed}");
            let classic = Recovery::new(
                seeded_network(cols, rows, holes, per_cell, seed),
                SrConfig::default().with_seed(seed),
            )
            .expect("topology")
            .run();
            let mut event = EventSrRecovery::new(
                seeded_network(cols, rows, holes, per_cell, seed),
                SrConfig::default().with_seed(seed).with_trace(true),
                NetModelSpec::Ideal,
            )
            .expect("topology");
            let report = event.run();
            let announces = event
                .trace()
                .records()
                .iter()
                .filter(|r| {
                    matches!(&r.event, TraceEvent::NetMessage { msg, .. } if msg == "hole_announce")
                })
                .count() as u64;
            assert_eq!(announces, classic.metrics.messages, "{tag}");
            assert_eq!(report.metrics.messages, classic.metrics.messages, "{tag}");
        }
    }
}

#[test]
fn single_initiation_per_hole_under_ideal_weather() {
    // Theorem anchor (Lemma 1 / Theorem 1): each vacant cell is
    // monitored by exactly one head, so exactly one process is
    // initiated per deployment hole — observable as a trace-count
    // equality, with a zero duplicate ledger to match.
    for (cols, rows, holes, per_cell) in scenario_grid() {
        for seed in [11u64, 47] {
            let tag = format!("SR {cols}x{rows} holes={holes} seed={seed}");
            let mut event = EventSrRecovery::new(
                seeded_network(cols, rows, holes, per_cell, seed),
                SrConfig::default().with_seed(seed).with_trace(true),
                NetModelSpec::Ideal,
            )
            .expect("topology");
            let report = event.run();
            let initiated = event.trace().count_kind("process_initiated") as u64;
            assert_eq!(initiated, holes as u64, "{tag}");
            assert_eq!(report.metrics.processes_initiated, holes as u64, "{tag}");
            assert_eq!(report.health.duplicate_initiations, 0, "{tag}");
        }
    }
}

#[test]
fn seeded_lossy_weather_breaks_the_single_initiation_guarantee() {
    // The CI-pinned honesty check: under a seeded Bernoulli 30%-loss
    // model the engine must *report* duplicate initiations and lost
    // cascades instead of silently preserving the paper's guarantees.
    let spec = NetModelSpec::Bernoulli {
        loss_ppm: 300_000,
        latency: 1,
    };
    let mut duplicates = 0u64;
    let mut lost = 0u64;
    let mut dropped = 0u64;
    for seed in 0..24 {
        let report = EventSrRecovery::new(
            cascade_network(seed),
            SrConfig::default().with_seed(seed),
            spec,
        )
        .expect("topology")
        .run();
        duplicates += report.health.duplicate_initiations;
        lost += report.health.lost_cascades;
        dropped += report.health.messages_dropped;
    }
    assert!(dropped > 0, "30% loss must drop messages");
    assert!(
        lost > 0,
        "some dropped message must be a cascade notification"
    );
    assert!(
        duplicates >= 1,
        "a lost baton must provoke at least one duplicate initiation"
    );
}
