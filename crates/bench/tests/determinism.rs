//! Campaign determinism: the same master seed must produce bit-identical
//! aggregate artifacts regardless of how many workers execute the
//! matrix.
//!
//! This is the property that makes campaign results citable: per-trial
//! RNG streams are addressed by matrix coordinates (not draw order), and
//! the folder replays completed trials into each cell's Welford
//! accumulators strictly in trial order, so scheduling can change
//! wall-clock but never a single output byte. The property test sweeps
//! small random matrices (grid shape, targets, seed count, master seed)
//! and compares the full JSON and CSV artifacts across 1, 2 and 8
//! workers.

use proptest::prelude::*;
use wsn_bench::campaign::{run_campaign, CampaignConfig};
use wsn_coverage::SchemeId;
use wsn_grid::RegionShape;

fn small_matrix(
    master: u64,
    grid_choice: usize,
    t1: usize,
    t2: usize,
    seeds: u64,
) -> CampaignConfig {
    // 5x5 exercises the dual-path topology; the rest the single cycle.
    let grids = [(4u16, 4u16), (6, 6), (5, 5)];
    CampaignConfig {
        name: "prop".into(),
        schemes: SchemeId::list(&["ar", "sr"]),
        grids: vec![grids[grid_choice % grids.len()]],
        targets: vec![t1, t2],
        seeds_per_cell: seeds,
        master_seed: master,
        ..CampaignConfig::paper()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn campaign_artifacts_are_worker_count_invariant(
        master in 0u64..1_000_000_000,
        grid_choice in 0usize..3,
        t1 in 1usize..25,
        t2 in 25usize..90,
        seeds in 1u64..4,
    ) {
        let cfg = small_matrix(master, grid_choice, t1, t2, seeds);
        let serial = run_campaign(&cfg.clone().with_workers(1)).expect("valid matrix");
        let two = run_campaign(&cfg.clone().with_workers(2)).expect("valid matrix");
        let eight = run_campaign(&cfg.clone().with_workers(8)).expect("valid matrix");
        let json = serial.to_json().to_string();
        prop_assert_eq!(&json, &two.to_json().to_string());
        prop_assert_eq!(&json, &eight.to_json().to_string());
        let csv = serial.to_csv();
        prop_assert_eq!(&csv, &two.to_csv());
        prop_assert_eq!(&csv, &eight.to_csv());
        // The structured results agree too, not just their rendering.
        prop_assert_eq!(&serial.cells, &eight.cells);
    }

    #[test]
    fn masked_campaign_artifacts_are_worker_count_invariant(
        master in 0u64..1_000_000_000,
        shape_idx in 0usize..4,
        t in 1usize..40,
        seeds in 1u64..3,
    ) {
        // The region axis must not cost the determinism guarantee: the
        // masked trials derive their streams from coordinates including
        // the region's stable id.
        let cfg = CampaignConfig {
            name: "propmask".into(),
            schemes: SchemeId::list(&["ar", "sr"]),
            regions: vec![RegionShape::Full, RegionShape::IRREGULAR[shape_idx]],
            grids: vec![(6, 6)],
            targets: vec![t],
            seeds_per_cell: seeds,
            master_seed: master,
            ..CampaignConfig::paper()
        };
        let serial = run_campaign(&cfg.clone().with_workers(1)).expect("valid matrix");
        let eight = run_campaign(&cfg.clone().with_workers(8)).expect("valid matrix");
        prop_assert_eq!(serial.to_json().to_string(), eight.to_json().to_string());
        prop_assert_eq!(serial.to_csv(), eight.to_csv());
    }

    #[test]
    fn campaign_reruns_are_bit_identical(
        master in 0u64..1_000_000_000,
        t in 1usize..40,
    ) {
        // Same matrix, same master seed, default worker count: a rerun
        // reproduces the artifact byte for byte.
        let cfg = CampaignConfig {
            name: "rerun".into(),
            schemes: SchemeId::list(&["sr"]),
            grids: vec![(6, 6)],
            targets: vec![t],
            seeds_per_cell: 2,
            master_seed: master,
            ..CampaignConfig::paper()
        };
        let a = run_campaign(&cfg).expect("valid matrix");
        let b = run_campaign(&cfg).expect("valid matrix");
        prop_assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }
}
