use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{GeometryError, Point2, Rect, Result};

/// A closed disk: the sensing or communication footprint of a node.
///
/// Used for three purposes in the reproduction:
///
/// * communication reachability (`R = √5·r` between heads of neighboring
///   grid cells, per the GAF model the paper builds on),
/// * geometric coverage checks (what fraction of the surveillance area is
///   inside at least one sensing disk), and
/// * fault footprints (`FaultEvent::KillRegion` and the moving `Jammer`
///   disable every node the disk [`Disk::contains`]).
///
/// **Boundary semantics are closed everywhere**: a point exactly on the
/// radius is inside, tangent disks intersect, and a rectangle touching
/// the circle is intersected. See [`Disk::contains`] for why this is
/// load-bearing for fault injection.
///
/// ```
/// use wsn_geometry::{Disk, Point2};
///
/// let d = Disk::new(Point2::ORIGIN, 5.0)?;
/// assert!(d.contains(Point2::new(3.0, 4.0)));
/// assert!(!d.contains(Point2::new(3.1, 4.0)));
/// # Ok::<(), wsn_geometry::GeometryError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Disk {
    center: Point2,
    radius: f64,
}

impl Disk {
    /// Creates a disk from center and radius.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::NonPositiveExtent`] when `radius <= 0`,
    /// and [`GeometryError::NonFinite`] on non-finite input.
    pub fn new(center: Point2, radius: f64) -> Result<Disk> {
        if !center.is_finite() || !radius.is_finite() {
            return Err(GeometryError::NonFinite {
                context: "Disk::new",
            });
        }
        if radius <= 0.0 {
            return Err(GeometryError::NonPositiveExtent {
                context: "Disk::new radius",
                value: radius,
            });
        }
        Ok(Disk { center, radius })
    }

    /// Center of the disk.
    #[inline]
    pub fn center(&self) -> Point2 {
        self.center
    }

    /// Radius of the disk.
    #[inline]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Area `π·radius²`.
    #[inline]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// Closed containment: points exactly on the boundary are **inside**
    /// (`distance² <= radius²`, no square root, so exactly-representable
    /// on-radius points compare without rounding slop).
    ///
    /// This edge inclusivity is part of the fault-model contract, not an
    /// implementation accident: a node sitting exactly on a
    /// `KillRegion`/`Jammer` radius is killed. A moving jammer whose
    /// per-round displacement lands nodes exactly on its rim — easy to
    /// construct with integer velocities on grid-aligned deployments —
    /// must behave identically on every step, never flickering between
    /// hit and miss by one ULP of an open-boundary comparison.
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        self.center.distance_squared(p) <= self.radius * self.radius
    }

    /// Whether two closed disks share at least one point.
    #[inline]
    pub fn intersects_disk(&self, other: &Disk) -> bool {
        let r = self.radius + other.radius;
        self.center.distance_squared(other.center) <= r * r
    }

    /// Whether the closed disk and closed rectangle share at least one
    /// point.
    #[inline]
    pub fn intersects_rect(&self, rect: &Rect) -> bool {
        rect.distance_to_point(self.center) <= self.radius
    }

    /// Whether the rectangle lies entirely inside the disk (used to prove
    /// a cell fully covered by a single sensor).
    ///
    /// True iff all four corners are inside, since disks are convex.
    pub fn covers_rect(&self, rect: &Rect) -> bool {
        rect.corners().iter().all(|&c| self.contains(c))
    }
}

impl fmt::Display for Disk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "disk({}, r={:.3})", self.center, self.radius)
    }
}

/// Estimates the fraction of `area` covered by at least one disk, by
/// sampling a `resolution × resolution` lattice of probe points.
///
/// This is the standard Monte-Carlo-style coverage estimator used to
/// validate the GAF guarantee ("a head in every cell ⇒ full coverage")
/// geometrically rather than combinatorially. Accuracy is
/// `O(1/resolution)`; `resolution = 100` (10⁴ probes) is plenty for the
/// assertions in this repository.
///
/// # Panics
///
/// Panics if `resolution == 0` (a caller bug: there is no meaningful
/// zero-probe estimate).
pub fn coverage_fraction(area: &Rect, disks: &[Disk], resolution: usize) -> f64 {
    assert!(resolution > 0, "coverage_fraction: resolution must be > 0");
    let mut covered = 0usize;
    let total = resolution * resolution;
    for iy in 0..resolution {
        for ix in 0..resolution {
            // Probe at cell centers of the sampling lattice.
            let fx = (ix as f64 + 0.5) / resolution as f64;
            let fy = (iy as f64 + 0.5) / resolution as f64;
            let p = Point2::new(
                area.min().x + fx * area.width(),
                area.min().y + fy * area.height(),
            );
            if disks.iter().any(|d| d.contains(p)) {
                covered += 1;
            }
        }
    }
    covered as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates() {
        assert!(Disk::new(Point2::ORIGIN, 0.0).is_err());
        assert!(Disk::new(Point2::ORIGIN, -1.0).is_err());
        assert!(Disk::new(Point2::new(f64::NAN, 0.0), 1.0).is_err());
        assert!(Disk::new(Point2::ORIGIN, f64::INFINITY).is_err());
    }

    #[test]
    fn containment_boundary_closed() {
        let d = Disk::new(Point2::ORIGIN, 1.0).unwrap();
        assert!(d.contains(Point2::new(1.0, 0.0)));
        assert!(!d.contains(Point2::new(1.0 + 1e-9, 0.0)));
    }

    #[test]
    fn containment_on_radius_under_jammer_stepping() {
        // A jammer-style disk translated by an integer velocity each
        // round: a node exactly on the rim must be contained at every
        // step, on-axis and on 3-4-5 diagonals alike.
        let radius = 5.0;
        for round in 0..20 {
            let center = Point2::new(round as f64 * 2.0, round as f64);
            let d = Disk::new(center, radius).unwrap();
            // On-axis rim points.
            assert!(d.contains(Point2::new(center.x + radius, center.y)));
            assert!(d.contains(Point2::new(center.x - radius, center.y)));
            assert!(d.contains(Point2::new(center.x, center.y + radius)));
            // Exact Pythagorean rim point (3² + 4² = 5²).
            assert!(d.contains(Point2::new(center.x + 3.0, center.y + 4.0)));
            // One ULP-scale nudge outward falls off the rim.
            assert!(!d.contains(Point2::new(center.x + radius + 1e-9, center.y)));
        }
    }

    #[test]
    fn disk_disk_intersection() {
        let a = Disk::new(Point2::ORIGIN, 1.0).unwrap();
        let b = Disk::new(Point2::new(2.0, 0.0), 1.0).unwrap();
        assert!(a.intersects_disk(&b)); // tangent
        let c = Disk::new(Point2::new(2.1, 0.0), 1.0).unwrap();
        assert!(!a.intersects_disk(&c));
    }

    #[test]
    fn disk_rect_intersection() {
        let d = Disk::new(Point2::ORIGIN, 1.0).unwrap();
        let near = Rect::from_size(Point2::new(0.5, 0.5), 1.0, 1.0).unwrap();
        assert!(d.intersects_rect(&near));
        let far = Rect::from_size(Point2::new(2.0, 2.0), 1.0, 1.0).unwrap();
        assert!(!d.intersects_rect(&far));
    }

    #[test]
    fn covers_rect_by_corners() {
        // A disk of radius √2 centered on a unit square centered at origin
        // covers it; radius 0.5 does not.
        let sq = Rect::centered_square(Point2::ORIGIN, 2.0).unwrap();
        let big = Disk::new(Point2::ORIGIN, 2.0_f64.sqrt()).unwrap();
        assert!(big.covers_rect(&sq));
        let small = Disk::new(Point2::ORIGIN, 1.0).unwrap();
        assert!(!small.covers_rect(&sq));
    }

    #[test]
    fn gaf_range_covers_cell_from_anywhere_inside() {
        // GAF guarantee geometry: a sensor anywhere in an r x r cell with
        // sensing radius >= sqrt(2) * r covers its own whole cell. The
        // worst case is a corner sensor reaching the opposite corner.
        let r = 4.4721;
        let cell = Rect::from_size(Point2::ORIGIN, r, r).unwrap();
        let corner_sensor = Disk::new(Point2::ORIGIN, r * 2.0_f64.sqrt()).unwrap();
        assert!(corner_sensor.covers_rect(&cell));
    }

    #[test]
    fn coverage_fraction_estimates() {
        let area = Rect::from_size(Point2::ORIGIN, 10.0, 10.0).unwrap();
        // One giant disk covering everything.
        let all = vec![Disk::new(Point2::new(5.0, 5.0), 10.0).unwrap()];
        assert_eq!(coverage_fraction(&area, &all, 50), 1.0);
        // No disks: zero.
        assert_eq!(coverage_fraction(&area, &[], 50), 0.0);
        // Half-disk on the left edge: exact area is pi * 25 / 2 of 100.
        let half = vec![Disk::new(Point2::new(0.0, 5.0), 5.0).unwrap()];
        let f = coverage_fraction(&area, &half, 100);
        let exact = std::f64::consts::PI * 25.0 / 2.0 / 100.0;
        assert!((f - exact).abs() < 0.02, "got {f}, exact {exact}");
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn coverage_fraction_zero_resolution_panics() {
        let area = Rect::from_size(Point2::ORIGIN, 1.0, 1.0).unwrap();
        coverage_fraction(&area, &[], 0);
    }

    #[test]
    fn area_and_display() {
        let d = Disk::new(Point2::ORIGIN, 2.0).unwrap();
        assert!((d.area() - 4.0 * std::f64::consts::PI).abs() < 1e-12);
        assert!(!d.to_string().is_empty());
    }
}
