//! Geometry of a single `r × r` virtual-grid cell, including the paper's
//! *central area* and the per-hop movement-distance bounds.
//!
//! Section 4 of the paper ("Implementation Issue") controls each node
//! movement by sending the moving spare to a point in the **central area**
//! of the target cell. The stated bounds — minimum distance `r/4` and
//! maximum `(√58/4)·r` — pin down the central area exactly: it is the
//! concentric square of side `(3/4)·r`.
//!
//! *Derivation.* Let the central square have side `c`. For two
//! horizontally adjacent cells, the closest pair of central-area points
//! are on the facing edges, at distance `r − c`; the paper's minimum
//! `r/4` forces `c = (3/4)·r`. The farthest pair are opposite outer
//! corners, at distance `√((r + c)² + c²) = (r/4)·√(7² + 3²) =
//! (√58/4)·r`, matching the paper's maximum. The paper uses `1.08·r` as
//! the average; see [`CellGeometry::AVG_MOVE_FACTOR`].

use serde::{Deserialize, Serialize};

use crate::{GeometryError, Point2, Rect, Result};

/// Side fraction of the central area relative to the cell side
/// (`c = CENTRAL_FRACTION · r`), derived from the paper's movement-distance
/// bounds as explained in the module docs.
pub const CENTRAL_FRACTION: f64 = 0.75;

/// Geometry helper for the cells of an `r × r` virtual grid anchored at an
/// origin point.
///
/// This type knows nothing about occupancy or heads — it is pure geometry:
/// cell rectangles, central areas, and the movement-distance model.
///
/// ```
/// use wsn_geometry::{CellGeometry, Point2};
///
/// let g = CellGeometry::new(Point2::ORIGIN, 4.0)?;
/// let cell = g.cell_rect(2, 3);
/// assert_eq!(cell.min(), Point2::new(8.0, 12.0));
/// assert_eq!(g.cell_index_of(Point2::new(9.0, 13.5)), (2, 3));
/// # Ok::<(), wsn_geometry::GeometryError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellGeometry {
    origin: Point2,
    side: f64,
}

impl CellGeometry {
    /// Average per-hop movement distance as a multiple of `r`, for moves
    /// between uniformly distributed points in the central areas of
    /// 4-adjacent cells. The paper adopts `1.08` (its §4); Monte-Carlo
    /// integration of the exact model gives `≈ 1.050` — the ~3% gap is
    /// noted in EXPERIMENTS.md and does not affect any comparison shape,
    /// since both SR and AR use the same model. We follow the paper's
    /// constant so analytical overlays reproduce Figures 5 and 8.
    pub const AVG_MOVE_FACTOR: f64 = 1.08;

    /// Minimum per-hop distance as a multiple of `r` (`1/4`).
    pub const MIN_MOVE_FACTOR: f64 = 0.25;

    /// Maximum per-hop distance as a multiple of `r` (`√58/4 ≈ 1.9039`).
    pub const MAX_MOVE_FACTOR: f64 = 1.903_943_276_465_977;

    /// Creates the geometry for a grid of `side × side` cells whose cell
    /// `(0, 0)` has minimum corner `origin`.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::NonPositiveExtent`] when `side <= 0`, and
    /// [`GeometryError::NonFinite`] on non-finite input.
    pub fn new(origin: Point2, side: f64) -> Result<CellGeometry> {
        if !origin.is_finite() || !side.is_finite() {
            return Err(GeometryError::NonFinite {
                context: "CellGeometry::new",
            });
        }
        if side <= 0.0 {
            return Err(GeometryError::NonPositiveExtent {
                context: "CellGeometry::new side",
                value: side,
            });
        }
        Ok(CellGeometry { origin, side })
    }

    /// Cell side length `r`.
    #[inline]
    pub fn side(&self) -> f64 {
        self.side
    }

    /// Origin (minimum corner of cell `(0, 0)`).
    #[inline]
    pub fn origin(&self) -> Point2 {
        self.origin
    }

    /// Rectangle of the cell at integer grid index `(x, y)`.
    pub fn cell_rect(&self, x: u32, y: u32) -> Rect {
        let min = Point2::new(
            self.origin.x + x as f64 * self.side,
            self.origin.y + y as f64 * self.side,
        );
        // Cannot fail: side > 0 and coordinates finite by invariant.
        Rect::from_size(min, self.side, self.side).expect("cell rect from valid geometry")
    }

    /// Center of the cell at `(x, y)`.
    pub fn cell_center(&self, x: u32, y: u32) -> Point2 {
        self.cell_rect(x, y).center()
    }

    /// Central area of the cell at `(x, y)`: the concentric
    /// `(3/4)r × (3/4)r` square that movement targets are drawn from.
    pub fn central_area(&self, x: u32, y: u32) -> Rect {
        self.cell_rect(x, y)
            .shrunk(CENTRAL_FRACTION)
            .expect("central area from valid geometry")
    }

    /// Integer cell index containing point `p` (floor division; points
    /// left/below the origin map to negative indices, which this returns
    /// as saturating-to-zero is *not* applied — callers holding the grid
    /// bounds should use their own bounds check first).
    pub fn cell_index_of(&self, p: Point2) -> (i64, i64) {
        (
            ((p.x - self.origin.x) / self.side).floor() as i64,
            ((p.y - self.origin.y) / self.side).floor() as i64,
        )
    }

    /// Minimum possible per-hop movement distance, `r/4`.
    #[inline]
    pub fn min_move_distance(&self) -> f64 {
        Self::MIN_MOVE_FACTOR * self.side
    }

    /// Maximum possible per-hop movement distance, `(√58/4)·r`.
    #[inline]
    pub fn max_move_distance(&self) -> f64 {
        Self::MAX_MOVE_FACTOR * self.side
    }

    /// The paper's estimate of the average per-hop movement distance,
    /// `1.08·r` (see [`CellGeometry::AVG_MOVE_FACTOR`]).
    #[inline]
    pub fn avg_move_distance(&self) -> f64 {
        Self::AVG_MOVE_FACTOR * self.side
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CellGeometry {
        CellGeometry::new(Point2::ORIGIN, 4.0).unwrap()
    }

    #[test]
    fn constructor_validates() {
        assert!(CellGeometry::new(Point2::ORIGIN, 0.0).is_err());
        assert!(CellGeometry::new(Point2::ORIGIN, -1.0).is_err());
        assert!(CellGeometry::new(Point2::new(f64::NAN, 0.0), 1.0).is_err());
    }

    #[test]
    fn cell_rect_tiles_plane() {
        let g = geom();
        let r00 = g.cell_rect(0, 0);
        let r10 = g.cell_rect(1, 0);
        assert_eq!(r00.max().x, r10.min().x);
        assert_eq!(r00.area(), 16.0);
        assert_eq!(g.cell_center(1, 2), Point2::new(6.0, 10.0));
    }

    #[test]
    fn index_of_roundtrip() {
        let g = geom();
        for x in 0..5u32 {
            for y in 0..5u32 {
                let c = g.cell_center(x, y);
                assert_eq!(g.cell_index_of(c), (x as i64, y as i64));
                // Min corner belongs to the cell (half-open convention).
                let m = g.cell_rect(x, y).min();
                assert_eq!(g.cell_index_of(m), (x as i64, y as i64));
            }
        }
        assert_eq!(g.cell_index_of(Point2::new(-0.1, 0.0)), (-1, 0));
    }

    #[test]
    fn central_area_is_three_quarters() {
        let g = geom();
        let c = g.central_area(0, 0);
        assert!((c.width() - 3.0).abs() < 1e-12);
        assert_eq!(c.center(), g.cell_center(0, 0));
    }

    #[test]
    fn movement_bounds_match_paper() {
        let g = geom(); // r = 4
        assert!((g.min_move_distance() - 1.0).abs() < 1e-12); // r/4
        let max = 58.0_f64.sqrt() / 4.0 * 4.0;
        assert!((g.max_move_distance() - max).abs() < 1e-9);
        assert!((g.avg_move_distance() - 4.32).abs() < 1e-12); // 1.08 r
    }

    #[test]
    fn movement_bounds_are_attained_by_geometry() {
        // Closest pair of central-area points of adjacent cells = r/4;
        // farthest = sqrt(58)/4 * r. Verify against the Rect corners.
        let g = geom();
        let a = g.central_area(0, 0);
        let b = g.central_area(1, 0);
        let closest = a.max().x - b.min().x; // negative means gap
        assert!((b.min().x - a.max().x - g.min_move_distance()).abs() < 1e-12);
        assert!(closest < 0.0);
        let far = Point2::new(a.min().x, a.min().y).distance(b.max());
        assert!((far - g.max_move_distance()).abs() < 1e-9);
    }

    #[test]
    fn max_factor_constant_matches_sqrt58_over_4() {
        assert!((CellGeometry::MAX_MOVE_FACTOR - 58.0_f64.sqrt() / 4.0).abs() < 1e-12);
    }
}
