use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{GeometryError, Point2, Result, Vec2};

/// An axis-aligned rectangle, the shape of both grid cells and the whole
/// surveillance area.
///
/// Invariant: `min.x <= max.x`, `min.y <= max.y`, all coordinates finite.
/// The invariant is enforced by the constructors, which is why fields are
/// private and access goes through [`Rect::min`] / [`Rect::max`].
///
/// The `contains` convention is half-open: a point on the left/bottom edge
/// is inside, a point on the right/top edge is not. This makes a grid
/// partition of a larger rectangle a true partition (each point belongs to
/// exactly one cell), except for the global top/right boundary which is
/// handled by [`Rect::contains_closed`].
///
/// ```
/// use wsn_geometry::{Point2, Rect};
///
/// let r = Rect::new(Point2::new(0.0, 0.0), Point2::new(2.0, 1.0))?;
/// assert!(r.contains(Point2::new(0.0, 0.0)));
/// assert!(!r.contains(Point2::new(2.0, 1.0)));
/// assert!(r.contains_closed(Point2::new(2.0, 1.0)));
/// # Ok::<(), wsn_geometry::GeometryError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    min: Point2,
    max: Point2,
}

impl Rect {
    /// Creates a rectangle from its minimum and maximum corners.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::NonFinite`] if any coordinate is NaN or
    /// infinite, and [`GeometryError::InvertedRect`] if `min` exceeds
    /// `max` in either dimension. Zero-width or zero-height rectangles are
    /// allowed (they are useful as degenerate query boxes).
    pub fn new(min: Point2, max: Point2) -> Result<Rect> {
        if !min.is_finite() || !max.is_finite() {
            return Err(GeometryError::NonFinite {
                context: "Rect::new",
            });
        }
        if min.x > max.x || min.y > max.y {
            return Err(GeometryError::InvertedRect {
                min: (min.x, min.y),
                max: (max.x, max.y),
            });
        }
        Ok(Rect { min, max })
    }

    /// Creates a rectangle from its minimum corner and positive extents.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::NonPositiveExtent`] when `width` or
    /// `height` is not strictly positive, and [`GeometryError::NonFinite`]
    /// on non-finite input.
    pub fn from_size(min: Point2, width: f64, height: f64) -> Result<Rect> {
        if !width.is_finite() || !height.is_finite() {
            return Err(GeometryError::NonFinite {
                context: "Rect::from_size",
            });
        }
        if width <= 0.0 {
            return Err(GeometryError::NonPositiveExtent {
                context: "Rect::from_size width",
                value: width,
            });
        }
        if height <= 0.0 {
            return Err(GeometryError::NonPositiveExtent {
                context: "Rect::from_size height",
                value: height,
            });
        }
        Rect::new(min, Point2::new(min.x + width, min.y + height))
    }

    /// Creates a square of side `side` centered on `center`.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::NonPositiveExtent`] when `side <= 0`, and
    /// [`GeometryError::NonFinite`] on non-finite input.
    pub fn centered_square(center: Point2, side: f64) -> Result<Rect> {
        if !side.is_finite() {
            return Err(GeometryError::NonFinite {
                context: "Rect::centered_square",
            });
        }
        if side <= 0.0 {
            return Err(GeometryError::NonPositiveExtent {
                context: "Rect::centered_square side",
                value: side,
            });
        }
        let half = side / 2.0;
        Rect::new(
            Point2::new(center.x - half, center.y - half),
            Point2::new(center.x + half, center.y + half),
        )
    }

    /// Minimum (bottom-left) corner.
    #[inline]
    pub fn min(&self) -> Point2 {
        self.min
    }

    /// Maximum (top-right) corner.
    #[inline]
    pub fn max(&self) -> Point2 {
        self.max
    }

    /// Width (`max.x − min.x`).
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (`max.y − min.y`).
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in square meters.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point2 {
        self.min.midpoint(self.max)
    }

    /// Half-open containment test: left/bottom edges inclusive, right/top
    /// edges exclusive. See the type-level docs for why.
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= self.min.x && p.x < self.max.x && p.y >= self.min.y && p.y < self.max.y
    }

    /// Closed containment test: all edges inclusive.
    #[inline]
    pub fn contains_closed(&self, p: Point2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Returns `true` when the closed rectangles overlap (shared edges
    /// count as overlap).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Intersection of two rectangles, or `None` when they are disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        let min = Point2::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y));
        let max = Point2::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y));
        // Construction cannot fail: intersects() guarantees min <= max and
        // both inputs hold the finite invariant.
        Some(Rect { min, max })
    }

    /// The point of `self` closest to `p` (i.e. `p` clamped to the
    /// rectangle).
    #[inline]
    pub fn clamp_point(&self, p: Point2) -> Point2 {
        Point2::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// The concentric rectangle scaled by `fraction` about the center.
    ///
    /// The paper's *central area* of a grid cell is `shrunk(0.75)`: a
    /// `(3/4)r × (3/4)r` square about the cell center, which yields the
    /// stated per-hop movement-distance bounds `[r/4, (√58/4)·r]`.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::NonPositiveExtent`] when
    /// `fraction <= 0`, and [`GeometryError::NonFinite`] when `fraction`
    /// is not finite.
    pub fn shrunk(&self, fraction: f64) -> Result<Rect> {
        if !fraction.is_finite() {
            return Err(GeometryError::NonFinite {
                context: "Rect::shrunk",
            });
        }
        if fraction <= 0.0 {
            return Err(GeometryError::NonPositiveExtent {
                context: "Rect::shrunk fraction",
                value: fraction,
            });
        }
        let c = self.center();
        let hw = self.width() * fraction / 2.0;
        let hh = self.height() * fraction / 2.0;
        Rect::new(
            Point2::new(c.x - hw, c.y - hh),
            Point2::new(c.x + hw, c.y + hh),
        )
    }

    /// Translates the rectangle by `v`.
    pub fn translated(&self, v: Vec2) -> Rect {
        Rect {
            min: self.min + v,
            max: self.max + v,
        }
    }

    /// The four corners in counter-clockwise order starting at `min`.
    pub fn corners(&self) -> [Point2; 4] {
        [
            self.min,
            Point2::new(self.max.x, self.min.y),
            self.max,
            Point2::new(self.min.x, self.max.y),
        ]
    }

    /// Shortest distance from `p` to the rectangle (0 when inside).
    pub fn distance_to_point(&self, p: Point2) -> f64 {
        self.clamp_point(p).distance(p)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Point2::new(x0, y0), Point2::new(x1, y1)).unwrap()
    }

    #[test]
    fn constructors_validate() {
        assert!(Rect::new(Point2::new(1.0, 0.0), Point2::new(0.0, 1.0)).is_err());
        assert!(Rect::new(Point2::new(f64::NAN, 0.0), Point2::new(1.0, 1.0)).is_err());
        assert!(Rect::from_size(Point2::ORIGIN, -1.0, 1.0).is_err());
        assert!(Rect::from_size(Point2::ORIGIN, 1.0, 0.0).is_err());
        assert!(Rect::centered_square(Point2::ORIGIN, 0.0).is_err());
        assert!(Rect::centered_square(Point2::ORIGIN, f64::INFINITY).is_err());
    }

    #[test]
    fn size_and_center() {
        let r = rect(1.0, 2.0, 4.0, 6.0);
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.center(), Point2::new(2.5, 4.0));
    }

    #[test]
    fn half_open_containment() {
        let r = rect(0.0, 0.0, 1.0, 1.0);
        assert!(r.contains(Point2::new(0.0, 0.0)));
        assert!(!r.contains(Point2::new(1.0, 0.5)));
        assert!(!r.contains(Point2::new(0.5, 1.0)));
        assert!(r.contains_closed(Point2::new(1.0, 1.0)));
        assert!(!r.contains_closed(Point2::new(1.0001, 1.0)));
    }

    #[test]
    fn partition_property_no_double_membership() {
        // Two adjacent cells sharing an edge: boundary point belongs to
        // exactly one under the half-open convention.
        let left = rect(0.0, 0.0, 1.0, 1.0);
        let right = rect(1.0, 0.0, 2.0, 1.0);
        let boundary = Point2::new(1.0, 0.5);
        assert!(!left.contains(boundary));
        assert!(right.contains(boundary));
    }

    #[test]
    fn intersection_cases() {
        let a = rect(0.0, 0.0, 2.0, 2.0);
        let b = rect(1.0, 1.0, 3.0, 3.0);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, rect(1.0, 1.0, 2.0, 2.0));
        let c = rect(5.0, 5.0, 6.0, 6.0);
        assert!(a.intersection(&c).is_none());
        assert!(!a.intersects(&c));
        // Shared edge counts as intersecting (degenerate overlap).
        let d = rect(2.0, 0.0, 3.0, 2.0);
        assert!(a.intersects(&d));
        assert_eq!(a.intersection(&d).unwrap().area(), 0.0);
    }

    #[test]
    fn shrunk_central_area_bounds() {
        // r = 4 cell: central area must be the centered 3x3 square.
        let cell = rect(0.0, 0.0, 4.0, 4.0);
        let central = cell.shrunk(0.75).unwrap();
        assert_eq!(central.min(), Point2::new(0.5, 0.5));
        assert_eq!(central.max(), Point2::new(3.5, 3.5));
        assert!(cell.shrunk(0.0).is_err());
        assert!(cell.shrunk(f64::NAN).is_err());
    }

    #[test]
    fn clamp_and_distance() {
        let r = rect(0.0, 0.0, 1.0, 1.0);
        assert_eq!(r.clamp_point(Point2::new(2.0, 0.5)), Point2::new(1.0, 0.5));
        assert_eq!(r.distance_to_point(Point2::new(2.0, 0.5)), 1.0);
        assert_eq!(r.distance_to_point(Point2::new(0.5, 0.5)), 0.0);
    }

    #[test]
    fn corners_ccw() {
        let r = rect(0.0, 0.0, 1.0, 2.0);
        let c = r.corners();
        assert_eq!(c[0], Point2::new(0.0, 0.0));
        assert_eq!(c[1], Point2::new(1.0, 0.0));
        assert_eq!(c[2], Point2::new(1.0, 2.0));
        assert_eq!(c[3], Point2::new(0.0, 2.0));
    }

    #[test]
    fn translated_preserves_size() {
        let r = rect(0.0, 0.0, 2.0, 1.0).translated(Vec2::new(5.0, -1.0));
        assert_eq!(r.min(), Point2::new(5.0, -1.0));
        assert_eq!(r.width(), 2.0);
        assert_eq!(r.height(), 1.0);
    }

    #[test]
    fn display_nonempty() {
        assert!(!rect(0.0, 0.0, 1.0, 1.0).to_string().is_empty());
    }
}
