use std::fmt;

/// Error type for fallible geometry constructors.
///
/// All variants indicate invalid numeric input (non-finite coordinates or
/// non-positive extents); this crate never panics on user input that is
/// rejected by these checks.
#[derive(Debug, Clone, PartialEq)]
pub enum GeometryError {
    /// A coordinate was NaN or infinite.
    NonFinite {
        /// Which construction rejected the value.
        context: &'static str,
    },
    /// A width, height or radius was zero or negative.
    NonPositiveExtent {
        /// Which construction rejected the value.
        context: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A rectangle was constructed with `min` not component-wise `<= max`.
    InvertedRect {
        /// The minimum corner supplied.
        min: (f64, f64),
        /// The maximum corner supplied.
        max: (f64, f64),
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::NonFinite { context } => {
                write!(f, "non-finite coordinate in {context}")
            }
            GeometryError::NonPositiveExtent { context, value } => {
                write!(f, "non-positive extent {value} in {context}")
            }
            GeometryError::InvertedRect { min, max } => {
                write!(
                    f,
                    "inverted rectangle: min ({}, {}) exceeds max ({}, {})",
                    min.0, min.1, max.0, max.1
                )
            }
        }
    }
}

impl std::error::Error for GeometryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            GeometryError::NonFinite { context: "test" },
            GeometryError::NonPositiveExtent {
                context: "test",
                value: -1.0,
            },
            GeometryError::InvertedRect {
                min: (1.0, 1.0),
                max: (0.0, 0.0),
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeometryError>();
    }
}
