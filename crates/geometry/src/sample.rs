//! RNG-free uniform sampling helpers.
//!
//! This crate deliberately carries no random-number dependency: callers
//! supply uniform variates in `[0, 1)` (typically from
//! `wsn_simcore::rng::SimRng`) and these helpers map them into geometric
//! regions. Keeping the mapping here — next to the shapes — guarantees
//! every crate samples cells and central areas identically.

use crate::{Point2, Rect};

/// Maps two independent uniform variates `u, v ∈ [0, 1)` to a uniformly
/// distributed point in `rect`.
///
/// Inputs outside `[0, 1)` are mapped affinely all the same (the function
/// is total); passing non-uniform values simply produces a non-uniform
/// point. Degenerate rectangles (zero width/height) collapse the
/// corresponding coordinate.
#[inline]
pub fn point_in_rect(rect: &Rect, u: f64, v: f64) -> Point2 {
    Point2::new(
        rect.min().x + u * rect.width(),
        rect.min().y + v * rect.height(),
    )
}

/// Maps uniform variates to a point in the *central area* of `cell`
/// (the concentric square scaled by [`crate::cell::CENTRAL_FRACTION`]).
///
/// This is the paper's movement-target distribution: "each movement of
/// node *u* from one grid to its neighbor will randomly select the
/// destination location in the central area of the target grid" (§5).
#[inline]
pub fn point_in_central_area(cell: &Rect, u: f64, v: f64) -> Point2 {
    let central = cell
        .shrunk(crate::cell::CENTRAL_FRACTION)
        .expect("central fraction is a valid constant");
    point_in_rect(&central, u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point2;

    #[test]
    fn corners_of_unit_interval_map_to_rect_corners() {
        let r = Rect::from_size(Point2::new(1.0, 2.0), 3.0, 4.0).unwrap();
        assert_eq!(point_in_rect(&r, 0.0, 0.0), r.min());
        let p = point_in_rect(&r, 1.0, 1.0);
        assert_eq!(p, r.max());
        assert_eq!(point_in_rect(&r, 0.5, 0.5), r.center());
    }

    #[test]
    fn central_area_points_stay_in_central_area() {
        let cell = Rect::from_size(Point2::ORIGIN, 4.0, 4.0).unwrap();
        let central = cell.shrunk(0.75).unwrap();
        for &(u, v) in &[(0.0, 0.0), (0.999, 0.999), (0.25, 0.75), (0.5, 0.5)] {
            let p = point_in_central_area(&cell, u, v);
            assert!(central.contains_closed(p), "{p} outside {central}");
        }
    }

    #[test]
    fn grid_of_variates_is_uniformish() {
        // Coarse uniformity check: quadrant counts of a lattice of
        // variates are exactly balanced.
        let r = Rect::from_size(Point2::ORIGIN, 2.0, 2.0).unwrap();
        let mut quads = [0usize; 4];
        let n = 10;
        for i in 0..n {
            for j in 0..n {
                let p = point_in_rect(&r, (i as f64 + 0.5) / n as f64, (j as f64 + 0.5) / n as f64);
                let q = (p.x >= 1.0) as usize * 2 + (p.y >= 1.0) as usize;
                quads[q] += 1;
            }
        }
        assert_eq!(quads, [25, 25, 25, 25]);
    }
}
