//! Planar geometry primitives for wireless-sensor-network simulation.
//!
//! This crate is the lowest-level substrate of the reproduction of
//! *Mobility Control for Complete Coverage in Wireless Sensor Networks*
//! (Jiang, Wu, Kline, Krantz — ICDCS 2008 Workshops). Everything above it
//! (the virtual grid, the Hamilton-cycle topology, the replacement
//! protocols) manipulates positions, distances and areas through the types
//! defined here.
//!
//! # Contents
//!
//! * [`Point2`] / [`Vec2`] — points and displacement vectors in the plane.
//! * [`Rect`] — axis-aligned rectangles (cells, surveillance areas).
//! * [`Disk`] — sensing / communication disks.
//! * [`cell`] — the geometry of an `r × r` virtual-grid cell, including the
//!   *central area* used by the paper's mobility control (§4 of the paper)
//!   and the movement-distance bounds `r/4 ≤ d ≤ (√58/4)·r`.
//! * [`sample`] — uniform sampling inside rectangles given caller-supplied
//!   random numbers (this crate has no RNG dependency; callers pass
//!   uniform `f64`s in `[0, 1)`).
//!
//! # Example
//!
//! ```
//! use wsn_geometry::{Point2, Rect};
//!
//! let area = Rect::from_size(Point2::ORIGIN, 100.0, 50.0)?;
//! assert!(area.contains(Point2::new(10.0, 10.0)));
//! assert_eq!(area.center(), Point2::new(50.0, 25.0));
//! # Ok::<(), wsn_geometry::GeometryError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
mod disk;
mod error;
mod point;
mod rect;
pub mod sample;

pub use cell::CellGeometry;
pub use disk::{coverage_fraction, Disk};
pub use error::GeometryError;
pub use point::{Point2, Vec2};
pub use rect::Rect;

/// Convenient result alias for fallible geometry constructors.
pub type Result<T> = std::result::Result<T, GeometryError>;
