use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in the plane, in meters.
///
/// Sensor positions, grid-cell corners and movement targets are all
/// `Point2` values. The difference of two points is a [`Vec2`].
///
/// ```
/// use wsn_geometry::{Point2, Vec2};
///
/// let a = Point2::new(1.0, 2.0);
/// let b = a + Vec2::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// Horizontal coordinate (east-positive), meters.
    pub x: f64,
    /// Vertical coordinate (north-positive), meters.
    pub y: f64,
}

/// A displacement vector in the plane, in meters.
///
/// Produced by subtracting two [`Point2`] values; added back to a point to
/// translate it.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// Horizontal component, meters.
    pub x: f64,
    /// Vertical component, meters.
    pub y: f64,
}

impl Point2 {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Creates a point from coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Returns `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point2) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (cheaper than
    /// [`Point2::distance`]; use for comparisons).
    #[inline]
    pub fn distance_squared(self, other: Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Manhattan (L1) distance to `other`.
    #[inline]
    pub fn manhattan_distance(self, other: Point2) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Linear interpolation: `t = 0` yields `self`, `t = 1` yields `other`.
    ///
    /// `t` outside `[0, 1]` extrapolates along the same line; callers that
    /// need clamping should clamp `t` first.
    #[inline]
    pub fn lerp(self, other: Point2, t: f64) -> Point2 {
        Point2 {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }

    /// Component-wise midpoint of two points.
    #[inline]
    pub fn midpoint(self, other: Point2) -> Point2 {
        self.lerp(other, 0.5)
    }

    /// Displacement vector from `self` to `other` (`other − self`).
    #[inline]
    pub fn to(self, other: Point2) -> Vec2 {
        other - self
    }
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean length (magnitude) of the vector.
    #[inline]
    pub fn length(self) -> f64 {
        self.length_squared().sqrt()
    }

    /// Squared length.
    #[inline]
    pub fn length_squared(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the 3-D cross product (signed parallelogram area).
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Returns a vector with the same direction and length 1, or `None`
    /// for the zero vector (and vectors so short the division would not be
    /// meaningful).
    pub fn normalized(self) -> Option<Vec2> {
        let len = self.length();
        if len <= f64::EPSILON {
            None
        } else {
            Some(Vec2 {
                x: self.x / len,
                y: self.y / len,
            })
        }
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.3}, {:.3}>", self.x, self.y)
    }
}

impl Add<Vec2> for Point2 {
    type Output = Point2;
    #[inline]
    fn add(self, rhs: Vec2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign<Vec2> for Point2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub<Vec2> for Point2 {
    type Output = Point2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign<Vec2> for Point2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Sub for Point2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Point2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Point2 {
    fn from((x, y): (f64, f64)) -> Self {
        Point2::new(x, y)
    }
}

impl From<Point2> for (f64, f64) {
    fn from(p: Point2) -> Self {
        (p.x, p.y)
    }
}

impl From<(f64, f64)> for Vec2 {
    fn from((x, y): (f64, f64)) -> Self {
        Vec2::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_squared(b), 25.0);
        assert_eq!(a.manhattan_distance(b), 7.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point2::new(1.0, 1.0);
        let b = Point2::new(3.0, 5.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.midpoint(b), Point2::new(2.0, 3.0));
    }

    #[test]
    fn vector_arithmetic_roundtrips() {
        let a = Point2::new(2.0, -1.0);
        let v = Vec2::new(0.5, 4.0);
        let b = a + v;
        assert_eq!(b - a, v);
        assert_eq!(b - v, a);
        let mut c = a;
        c += v;
        assert_eq!(c, b);
        c -= v;
        assert_eq!(c, a);
    }

    #[test]
    fn normalized_unit_length() {
        let v = Vec2::new(3.0, 4.0);
        let n = v.normalized().unwrap();
        assert!((n.length() - 1.0).abs() < 1e-12);
        assert!(Vec2::ZERO.normalized().is_none());
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec2::new(1.0, 0.0);
        let y = Vec2::new(0.0, 1.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), 1.0);
        assert_eq!(y.cross(x), -1.0);
    }

    #[test]
    fn scalar_mul_div_neg() {
        let v = Vec2::new(2.0, -6.0);
        assert_eq!(v * 0.5, Vec2::new(1.0, -3.0));
        assert_eq!(v / 2.0, Vec2::new(1.0, -3.0));
        assert_eq!(-v, Vec2::new(-2.0, 6.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Point2::new(1.0, 2.0).to_string(), "(1.000, 2.000)");
        assert_eq!(Vec2::new(1.0, 2.0).to_string(), "<1.000, 2.000>");
    }

    #[test]
    fn tuple_conversions() {
        let p: Point2 = (1.0, 2.0).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.0, 2.0));
        let v: Vec2 = (3.0, 4.0).into();
        assert_eq!(v.length(), 5.0);
    }

    #[test]
    fn finiteness_checks() {
        assert!(Point2::new(1.0, 2.0).is_finite());
        assert!(!Point2::new(f64::NAN, 0.0).is_finite());
        assert!(!Vec2::new(f64::INFINITY, 0.0).is_finite());
    }
}
