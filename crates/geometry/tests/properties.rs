//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use wsn_geometry::{cell::CENTRAL_FRACTION, sample, CellGeometry, Disk, Point2, Rect, Vec2};

fn finite_coord() -> impl Strategy<Value = f64> {
    // Keep magnitudes modest so squared distances stay well inside f64.
    -1e6..1e6f64
}

fn point() -> impl Strategy<Value = Point2> {
    (finite_coord(), finite_coord()).prop_map(|(x, y)| Point2::new(x, y))
}

fn unit() -> impl Strategy<Value = f64> {
    0.0..1.0f64
}

proptest! {
    #[test]
    fn distance_is_symmetric(a in point(), b in point()) {
        prop_assert_eq!(a.distance(b).to_bits(), b.distance(a).to_bits());
    }

    #[test]
    fn distance_nonnegative_and_identity(a in point(), b in point()) {
        prop_assert!(a.distance(b) >= 0.0);
        prop_assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn triangle_inequality(a in point(), b in point(), c in point()) {
        let lhs = a.distance(c);
        let rhs = a.distance(b) + b.distance(c);
        // Allow relative tolerance for floating rounding.
        prop_assert!(lhs <= rhs + 1e-6 * (1.0 + rhs.abs()));
    }

    #[test]
    fn manhattan_dominates_euclidean(a in point(), b in point()) {
        prop_assert!(a.manhattan_distance(b) + 1e-9 >= a.distance(b));
    }

    #[test]
    fn lerp_stays_on_segment(a in point(), b in point(), t in unit()) {
        let p = a.lerp(b, t);
        let d = a.distance(b);
        prop_assert!(a.distance(p) <= d + 1e-6 * (1.0 + d));
        prop_assert!(b.distance(p) <= d + 1e-6 * (1.0 + d));
    }

    #[test]
    fn vector_add_sub_roundtrip(p in point(), dx in finite_coord(), dy in finite_coord()) {
        let v = Vec2::new(dx, dy);
        let q = p + v;
        let back = q - v;
        prop_assert!((back.x - p.x).abs() <= 1e-9 * (1.0 + p.x.abs()));
        prop_assert!((back.y - p.y).abs() <= 1e-9 * (1.0 + p.y.abs()));
    }

    #[test]
    fn rect_contains_its_center_and_samples(
        x in finite_coord(), y in finite_coord(),
        w in 0.001..1e4f64, h in 0.001..1e4f64,
        u in unit(), v in unit(),
    ) {
        let r = Rect::from_size(Point2::new(x, y), w, h).unwrap();
        prop_assert!(r.contains(r.center()));
        let p = sample::point_in_rect(&r, u, v);
        prop_assert!(r.contains_closed(p));
    }

    #[test]
    fn rect_intersection_is_contained_in_both(
        ax in -100.0..100.0f64, ay in -100.0..100.0f64,
        aw in 0.1..50.0f64, ah in 0.1..50.0f64,
        bx in -100.0..100.0f64, by in -100.0..100.0f64,
        bw in 0.1..50.0f64, bh in 0.1..50.0f64,
    ) {
        let a = Rect::from_size(Point2::new(ax, ay), aw, ah).unwrap();
        let b = Rect::from_size(Point2::new(bx, by), bw, bh).unwrap();
        match a.intersection(&b) {
            Some(i) => {
                prop_assert!(a.contains_closed(i.min()) && a.contains_closed(i.max()));
                prop_assert!(b.contains_closed(i.min()) && b.contains_closed(i.max()));
                prop_assert!(i.area() <= a.area().min(b.area()) + 1e-9);
            }
            None => prop_assert!(!a.intersects(&b)),
        }
    }

    #[test]
    fn shrunk_preserves_center_and_scales_area(
        x in -100.0..100.0f64, y in -100.0..100.0f64,
        w in 0.1..50.0f64, h in 0.1..50.0f64,
        f in 0.01..1.0f64,
    ) {
        let r = Rect::from_size(Point2::new(x, y), w, h).unwrap();
        let s = r.shrunk(f).unwrap();
        prop_assert!(s.center().distance(r.center()) < 1e-9 * (1.0 + r.center().distance(Point2::ORIGIN)));
        prop_assert!((s.area() - r.area() * f * f).abs() < 1e-6 * (1.0 + r.area()));
    }

    #[test]
    fn disk_contains_implies_rect_distance_within_radius(
        cx in -100.0..100.0f64, cy in -100.0..100.0f64,
        r in 0.1..50.0f64,
        px in -100.0..100.0f64, py in -100.0..100.0f64,
    ) {
        let d = Disk::new(Point2::new(cx, cy), r).unwrap();
        let p = Point2::new(px, py);
        prop_assert_eq!(d.contains(p), d.center().distance(p) <= r);
    }

    #[test]
    fn central_area_sample_respects_move_bounds(
        r in 0.5..20.0f64,
        u1 in unit(), v1 in unit(), u2 in unit(), v2 in unit(),
    ) {
        // The paper's movement model: source in central area of one cell,
        // target in central area of a 4-adjacent cell. Distance must lie
        // in [r/4, sqrt(58)/4 * r].
        let g = CellGeometry::new(Point2::ORIGIN, r).unwrap();
        let from = sample::point_in_central_area(&g.cell_rect(0, 0), u1, v1);
        let to = sample::point_in_central_area(&g.cell_rect(1, 0), u2, v2);
        let d = from.distance(to);
        prop_assert!(d >= g.min_move_distance() - 1e-9, "d={} < min={}", d, g.min_move_distance());
        prop_assert!(d <= g.max_move_distance() + 1e-9, "d={} > max={}", d, g.max_move_distance());
    }

    #[test]
    fn cell_index_roundtrip(
        r in 0.5..20.0f64,
        x in 0u32..64, y in 0u32..64,
        u in unit(), v in unit(),
    ) {
        let g = CellGeometry::new(Point2::ORIGIN, r).unwrap();
        let p = sample::point_in_rect(&g.cell_rect(x, y), u, v);
        // Half-open convention: any sampled point with u,v < 1 maps back.
        let (ix, iy) = g.cell_index_of(p);
        prop_assert!((ix - x as i64).abs() <= 0);
        prop_assert!((iy - y as i64).abs() <= 0);
    }
}

#[test]
fn central_fraction_is_locked_to_paper() {
    // Changing this constant silently breaks the movement-distance bounds
    // of the paper; this test pins it.
    assert_eq!(CENTRAL_FRACTION, 0.75);
}
